// Append-only JSONL journal I/O on the strict JSON parser.
//
// The campaign runtime (runtime/campaign/) checkpoints completed jobs
// into an append-only `results.jsonl`: one canonical compact record per
// line (Json::dump_compact + '\n'), flushed before the job is
// considered durable. Reading is strict — every interior line must
// parse as exactly one JSON value — with one deliberate carve-out: a
// final line with no trailing newline is a *torn tail* (the writer
// died mid-append). A torn record was never durable by the write
// protocol, so readers surface it as a flag rather than a parse error
// and let policy decide (the campaign loader refuses to resume over
// one; `tools/pw_campaign.py repair` truncates it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.h"

namespace politewifi::common {

struct JsonlReadResult {
  std::vector<Json> records;
  /// A trailing partial line (no '\n') that failed to parse. Empty when
  /// the file ended cleanly. Complete lines that fail to parse are hard
  /// errors, never torn tails.
  bool torn_tail = false;
  /// Byte offset where the torn tail starts (truncate here to repair).
  std::size_t torn_tail_offset = 0;
};

/// Reads every record of a JSONL file. Returns false (with *error) on
/// missing file or a corrupt interior line; a torn tail is reported via
/// the result, not as an error.
bool read_jsonl_file(const std::string& path, JsonlReadResult* out,
                     std::string* error);

/// Appends one record (compact canonical form + '\n') and flushes it to
/// the OS before returning, so a record that read_jsonl_file can see
/// complete survives the writer's death. Creates the file if needed.
bool append_jsonl_record(const std::string& path, const Json& record,
                         std::string* error);

}  // namespace politewifi::common
