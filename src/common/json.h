// A small JSON document tree with *canonical* serialization.
//
// Every experiment result, perf report and golden file in this repo is
// compared as text (golden-regression gating, the determinism property
// "same spec + seed => byte-identical JSON"), so the writer guarantees
// one canonical form: object keys are emitted in sorted order, numbers
// have exactly one formatting, and indentation is fixed. Two Json trees
// holding equal values always dump() to equal bytes.
//
// This is a writer-first type; tools/golden_compare.py does the
// tolerance-aware reading on the Python side. The one C++ reader is
// json_parse.h: the city driver parses child pw_run documents back in
// order to reduce them, relying on dump() being a parse() fixed point.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace politewifi::common {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() = default;  // null
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned v) : kind_(Kind::kInt), int_(v) {}
  Json(long v) : kind_(Kind::kInt), int_(v) {}
  Json(long long v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned long v);       // checks the value fits in a signed 64-bit
  Json(unsigned long long v);  // checks the value fits in a signed 64-bit
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object access; a null value silently promotes to an empty object
  /// (so `doc["a"]["b"] = 1` builds the path). Checks against other kinds.
  Json& operator[](const std::string& key);

  /// Object lookup without insertion; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Array append; a null value promotes to an empty array.
  void push_back(Json v);

  /// Array element read (checked: must be an array, index in range).
  const Json& at(std::size_t index) const;

  /// Element count of an array or object (0 for scalars).
  std::size_t size() const;

  // Typed reads (checked): used by tests and the CLI.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  // accepts kInt too
  const std::string& as_string() const;

  /// Key-sorted entries of an object (checked: must be an object). The
  /// campaign manifest parser walks this to reject unknown keys instead
  /// of silently ignoring author typos.
  const std::map<std::string, Json>& as_object() const;

  /// Canonical text: 2-space indentation, keys sorted, '\n'-separated.
  /// Appending a final newline is the writer's job (write_file does).
  std::string dump() const;

  /// Canonical single-line text: same sorted keys and scalar formatting
  /// as dump(), zero whitespace — the JSONL record form (jsonl.h), where
  /// one record must be one line. parse_json accepts both forms and
  /// equal trees produce equal bytes under either.
  std::string dump_compact() const;

 private:
  void dump_to(std::string* out, int depth) const;
  void dump_compact_to(std::string* out) const;
  static void append_escaped(std::string* out, const std::string& s);
  static void append_double(std::string* out, double v);

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace politewifi::common
