// Contract macros: machine-checked invariants with formatted messages.
//
// The engine's headline guarantees — ACKs inside SIFS, the indexed
// medium's byte-identity with brute force, the pooled scheduler's
// generation-checked cancellation — are exact-equivalence claims. A
// violated invariant must stop the simulation at the first wrong byte,
// not surface three tables later as a subtly different Figure 6.
//
//   PW_CHECK(cond, "fmt", ...)    always on, every build type. For
//                                 cold-path contracts: API misuse,
//                                 auditor verdicts, codec bounds.
//   PW_DCHECK(cond, "fmt", ...)   compiled out unless PW_AUDIT_ENABLED
//                                 (Debug builds, or -DPW_AUDIT=1 — the
//                                 asan-ubsan preset turns it on). For
//                                 hot-path invariants the release
//                                 engine cannot afford to re-derive.
//   PW_CHECK_EQ/NE/LT/LE/GT/GE   operand-printing comparisons (and the
//   PW_DCHECK_* twins)           same, audit-only).
//   PW_UNREACHABLE("fmt", ...)   marks states the control flow must
//                                 never reach; always fatal.
//
// A failed contract formats one line —
//   file.cpp:42: PW_CHECK(a == b) failed: message
// — hands it to the installed failure handler (stderr + abort() by
// default; tests swap in a throwing handler), and never returns.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace politewifi::contract {

/// Receives the fully formatted failure line. Must not return normally —
/// it may throw (test handlers do) or terminate; if it does return,
/// fail() aborts anyway so PW_CHECK keeps its [[noreturn]] promise.
using FailureHandler = void (*)(const std::string& message);

/// Installs `handler` (nullptr restores the stderr+abort default) and
/// returns the previous one. Not thread-safe: install before spawning
/// sweep workers, which is how the death tests use it.
FailureHandler set_failure_handler(FailureHandler handler);

/// Formats and reports a failed contract. `fmt`+varargs is the optional
/// user message (printf-style); bare checks omit it.
[[noreturn]] void fail(const char* file, int line, const char* macro,
                       const char* expression, const char* fmt = nullptr, ...)
    __attribute__((format(printf, 5, 6)));

namespace detail {

/// Renders an operand for comparison-failure messages. Anything
/// ostream-printable shows its value; everything else shows "?" (the
/// expression text in the message still identifies it).
template <typename T>
std::string stringify(const T& value) {
  if constexpr (requires(std::ostream& os) { os << value; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "?";
  }
}

template <typename A, typename B>
[[noreturn]] void fail_op(const char* file, int line, const char* macro,
                          const char* expression, const A& a, const B& b) {
  fail(file, line, macro, expression, "lhs=%s rhs=%s", stringify(a).c_str(),
       stringify(b).c_str());
}

}  // namespace detail
}  // namespace politewifi::contract

// Audit mode: Debug builds get it implicitly; any build can force it with
// -DPW_AUDIT=1 (the asan-ubsan preset does, so the sanitizer CI leg also
// exercises every PW_DCHECK and periodic auditor).
#if defined(PW_AUDIT) || !defined(NDEBUG)
#define PW_AUDIT_ENABLED 1
#else
#define PW_AUDIT_ENABLED 0
#endif

#define PW_CHECK(cond, ...)                                              \
  do {                                                                   \
    if (__builtin_expect(!(cond), 0)) {                                  \
      ::politewifi::contract::fail(__FILE__, __LINE__, "PW_CHECK", #cond \
                                   __VA_OPT__(, ) __VA_ARGS__);          \
    }                                                                    \
  } while (0)

#define PW_UNREACHABLE(...)                                             \
  ::politewifi::contract::fail(__FILE__, __LINE__, "PW_UNREACHABLE",    \
                               "reached" __VA_OPT__(, ) __VA_ARGS__)

// Comparison checks print both operand values on failure. Operands are
// evaluated exactly once.
#define PW_CHECK_OP_(macro, op, a, b)                                       \
  do {                                                                      \
    const auto& pw_lhs_ = (a);                                              \
    const auto& pw_rhs_ = (b);                                              \
    if (__builtin_expect(!(pw_lhs_ op pw_rhs_), 0)) {                       \
      ::politewifi::contract::detail::fail_op(__FILE__, __LINE__, macro,    \
                                              #a " " #op " " #b, pw_lhs_,   \
                                              pw_rhs_);                     \
    }                                                                       \
  } while (0)

#define PW_CHECK_EQ(a, b) PW_CHECK_OP_("PW_CHECK_EQ", ==, a, b)
#define PW_CHECK_NE(a, b) PW_CHECK_OP_("PW_CHECK_NE", !=, a, b)
#define PW_CHECK_LT(a, b) PW_CHECK_OP_("PW_CHECK_LT", <, a, b)
#define PW_CHECK_LE(a, b) PW_CHECK_OP_("PW_CHECK_LE", <=, a, b)
#define PW_CHECK_GT(a, b) PW_CHECK_OP_("PW_CHECK_GT", >, a, b)
#define PW_CHECK_GE(a, b) PW_CHECK_OP_("PW_CHECK_GE", >=, a, b)

#if PW_AUDIT_ENABLED
#define PW_DCHECK(cond, ...) PW_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define PW_DCHECK_EQ(a, b) PW_CHECK_EQ(a, b)
#define PW_DCHECK_NE(a, b) PW_CHECK_NE(a, b)
#define PW_DCHECK_LT(a, b) PW_CHECK_LT(a, b)
#define PW_DCHECK_LE(a, b) PW_CHECK_LE(a, b)
#define PW_DCHECK_GT(a, b) PW_CHECK_GT(a, b)
#define PW_DCHECK_GE(a, b) PW_CHECK_GE(a, b)
#else
// Compiled out: the condition stays syntactically checked (and ODR-used
// symbols stay referenced) but is never evaluated — release hot paths pay
// zero instructions.
#define PW_DCHECK(cond, ...) \
  do {                       \
    if (false) {             \
      (void)(cond);          \
    }                        \
  } while (0)
#define PW_DCHECK_EQ(a, b) PW_DCHECK((a) == (b))
#define PW_DCHECK_NE(a, b) PW_DCHECK((a) != (b))
#define PW_DCHECK_LT(a, b) PW_DCHECK((a) < (b))
#define PW_DCHECK_LE(a, b) PW_DCHECK((a) <= (b))
#define PW_DCHECK_GT(a, b) PW_DCHECK((a) > (b))
#define PW_DCHECK_GE(a, b) PW_DCHECK((a) >= (b))
#endif
