#include "common/rng.h"

// Header-only today; the TU anchors the library and keeps the option of
// moving distribution code out of line without touching users.
