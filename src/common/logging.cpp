#include "common/logging.h"

#include <cstdarg>
#include <vector>

#include "common/clock.h"

namespace politewifi {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { reset_sink(); }

void Logger::reset_sink() {
  sink_ = [](LogLevel level, const std::string& msg) {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), msg.c_str());
  };
}

void Logger::log(LogLevel level, const std::string& message) {
  if (sink_) sink_(level, message);
}

namespace detail {

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace detail

std::string format_time(TimePoint t) {
  const double s = to_seconds(t.time_since_epoch());
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6fs", s);
  return buf;
}

}  // namespace politewifi
