// Bands, channels and carrier frequencies.
#pragma once

#include <cstdint>

namespace politewifi::phy {

/// The two bands the paper's timing argument distinguishes: SIFS is 10 us
/// in 2.4 GHz (802.11b/g/n heritage) and 16 us in 5 GHz (802.11a/ac).
enum class Band : std::uint8_t {
  k2_4GHz,
  k5GHz,
};

const char* band_name(Band band);

/// Center frequency in Hz for a channel number in the given band.
/// 2.4 GHz: ch 1..13 -> 2412 + 5*(ch-1) MHz. 5 GHz: 5000 + 5*ch MHz.
double channel_frequency_hz(Band band, int channel);

/// 20 MHz — the only channel width the simulator models (ACKs and legacy
/// control responses always use 20 MHz non-HT duplicates anyway).
constexpr double kChannelBandwidthHz = 20e6;

/// OFDM subcarrier spacing (20 MHz / 64).
constexpr double kSubcarrierSpacingHz = 312.5e3;

/// Number of populated (data + pilot) subcarriers in a legacy 20 MHz OFDM
/// symbol: -26..-1, +1..+26.
constexpr int kNumSubcarriers = 52;

/// Maps subcarrier index 0..51 to its frequency offset from the carrier.
/// Index 0 -> -26 * spacing ... index 51 -> +26 * spacing (DC skipped).
double subcarrier_offset_hz(int index);

}  // namespace politewifi::phy
