#include "phy/csi.h"

#include <cmath>

#include "common/units.h"

namespace politewifi::phy {

double CsiSnapshot::mean_amplitude() const {
  if (h.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& v : h) sum += std::abs(v);
  return sum / double(h.size());
}

PathSet make_static_paths(double distance_m, int n_reflections, Rng& rng) {
  PathSet paths;
  paths.reserve(static_cast<std::size_t>(n_reflections) + 1);

  const double los_delay_ns = distance_m / kSpeedOfLight * 1e9;
  paths.push_back({.delay_ns = los_delay_ns, .amplitude = 1.0, .phase_rad = 0.0});

  for (int i = 0; i < n_reflections; ++i) {
    paths.push_back({
        .delay_ns = los_delay_ns + rng.uniform(5.0, 80.0),
        .amplitude = rng.uniform(0.1, 0.5),
        .phase_rad = rng.uniform(0.0, 2.0 * M_PI),
    });
  }
  return paths;
}

CsiSnapshot evaluate_csi(double carrier_hz, const PathSet& static_paths,
                         const PathSet& dynamic_paths, double noise_std,
                         Rng& rng, TimePoint time) {
  CsiSnapshot snap;
  snap.time = time;
  snap.h.resize(kNumSubcarriers);

  auto accumulate = [&](const PathSet& paths) {
    for (const auto& p : paths) {
      const double tau_s = p.delay_ns * 1e-9;
      for (int k = 0; k < kNumSubcarriers; ++k) {
        const double f = carrier_hz + subcarrier_offset_hz(k);
        const double phase = -2.0 * M_PI * f * tau_s + p.phase_rad;
        snap.h[k] += std::polar(p.amplitude, phase);
      }
    }
  };
  accumulate(static_paths);
  accumulate(dynamic_paths);

  if (noise_std > 0.0) {
    for (auto& v : snap.h) {
      v += std::complex<double>(rng.gaussian(0.0, noise_std),
                                rng.gaussian(0.0, noise_std));
    }
  }
  return snap;
}

}  // namespace politewifi::phy
