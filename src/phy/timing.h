// 802.11 interframe spacing and contention timing.
//
// These constants carry the paper's central argument (§2.2): an ACK is due
// exactly one SIFS after the eliciting frame ends — 10 us at 2.4 GHz,
// 16 us at 5 GHz — which is an order of magnitude less than the 200–700 us
// a WPA2 decode takes. The low-MAC therefore *must* commit to the ACK on
// the basis of FCS + addr1 alone.
#pragma once

#include "common/clock.h"
#include "phy/channel.h"
#include "phy/rates.h"

namespace politewifi::phy {

/// Short Interframe Space.
constexpr Duration sifs(Band band) {
  return band == Band::k2_4GHz ? microseconds(10) : microseconds(16);
}

/// Slot time (long slots in 2.4 GHz for DSSS compatibility).
constexpr Duration slot_time(Band band) {
  return band == Band::k2_4GHz ? microseconds(20) : microseconds(9);
}

/// DIFS = SIFS + 2 * slot.
constexpr Duration difs(Band band) { return sifs(band) + 2 * slot_time(band); }

/// PHY RX-start detection delay: how long after a transmission begins a
/// receiver knows a PPDU is arriving (preamble detect).
constexpr Duration rx_start_delay() { return microseconds(20); }

/// ACK timeout. The standard (§10.3.2.9) arms SIFS + slot + PHY-RX-START
/// after the PPDU ends and *holds* if an RXSTART indication arrives — the
/// receiving MAC then waits for the frame to finish. Our MAC only learns
/// of a frame when its PPDU completes, so the timeout is modeled as the
/// standard's window plus the airtime of a worst-case (lowest basic rate)
/// ACK: behaviourally identical, without a separate RXSTART event.
inline Duration ack_timeout(Band band) {
  return sifs(band) + slot_time(band) + rx_start_delay() +
         ppdu_airtime(kOfdm6, 14);
}

/// Contention window bounds (802.11 DCF).
constexpr int kCwMin = 15;
constexpr int kCwMax = 1023;

/// Default retry limit before a frame is abandoned.
constexpr int kRetryLimit = 7;

/// Duration/ID value for a data frame expecting an ACK at `ack_rate`:
/// SIFS + ACK airtime, in microseconds rounded up (fills the NAV).
std::uint16_t nav_for_ack(Band band, PhyRate ack_rate);

}  // namespace politewifi::phy
