// TX/RX vectors: the per-PPDU metadata handed across the PHY SAP.
#pragma once

#include <optional>

#include "phy/csi.h"
#include "phy/rates.h"

namespace politewifi::phy {

/// Parameters the MAC passes down with a frame to transmit.
struct TxVector {
  PhyRate rate = kOfdm6;
  double power_dbm = 15.0;  // typical client EIRP

  friend bool operator==(const TxVector&, const TxVector&) = default;
};

/// Parameters the PHY passes up with every received frame. The CSI field
/// is what the paper's attacker harvests from ACKs.
struct RxVector {
  PhyRate rate = kOfdm6;
  double rssi_dbm = -90.0;
  double snr_db = 0.0;
  std::optional<CsiSnapshot> csi;  // set when the receiver captures CSI
};

}  // namespace politewifi::phy
