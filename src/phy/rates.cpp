#include "phy/rates.h"

#include <cmath>
#include <cstdio>

namespace politewifi::phy {

std::string PhyRate::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s %.1f Mb/s",
                modulation == Modulation::kOfdm ? "OFDM" : "DSSS", mbps);
  return buf;
}

Duration ppdu_airtime(PhyRate rate, std::size_t mpdu_octets) {
  switch (rate.modulation) {
    case Modulation::kOfdm: {
      constexpr double kPreambleUs = 16.0;  // L-STF + L-LTF
      constexpr double kSignalUs = 4.0;     // L-SIG
      constexpr double kSymbolUs = 4.0;
      // SERVICE (16 bits) + PSDU + TAIL (6 bits), padded to whole symbols.
      const double bits = 16.0 + 8.0 * double(mpdu_octets) + 6.0;
      const double symbols = std::ceil(bits / rate.bits_per_symbol);
      const double us = kPreambleUs + kSignalUs + symbols * kSymbolUs;
      return std::chrono::duration_cast<Duration>(
          std::chrono::duration<double, std::micro>(us));
    }
    case Modulation::kDsss: {
      constexpr double kLongPreambleUs = 192.0;  // PLCP preamble + header
      const double us = kLongPreambleUs + 8.0 * double(mpdu_octets) / rate.mbps;
      return std::chrono::duration_cast<Duration>(
          std::chrono::duration<double, std::micro>(us));
    }
  }
  return Duration::zero();
}

PhyRate control_response_rate(PhyRate rate) {
  if (rate.modulation == Modulation::kDsss) {
    return rate.mbps >= 2.0 ? kDsss2 : kDsss1;
  }
  if (rate.mbps >= 24.0) return kOfdm24;
  if (rate.mbps >= 12.0) return kOfdm12;
  return kOfdm6;
}

}  // namespace politewifi::phy
