// PHY rates and airtime.
//
// The simulator carries every MPDU at a concrete PHY rate and computes its
// exact on-air duration. Control responses (ACK/CTS) are sent at legacy
// OFDM basic rates — the paper's footnote 3 leans on exactly this fact
// (the ESP32 is used *because* ACKs arrive at legacy 802.11a/g rates).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "phy/channel.h"

namespace politewifi::phy {

/// Modulation family — determines preamble format and symbol math.
enum class Modulation : std::uint8_t {
  kDsss,  // 802.11b heritage: 1, 2, 5.5, 11 Mb/s
  kOfdm,  // 802.11a/g legacy OFDM: 6..54 Mb/s
};

/// A concrete PHY rate.
struct PhyRate {
  Modulation modulation = Modulation::kOfdm;
  double mbps = 6.0;           // information rate
  int bits_per_symbol = 24;    // OFDM: data bits per 4 us symbol (NDBPS)

  friend constexpr bool operator==(const PhyRate&, const PhyRate&) = default;

  std::string name() const;
};

// Legacy OFDM rate set (802.11a/g). NDBPS from 802.11-2016 Table 17-4.
constexpr PhyRate kOfdm6{Modulation::kOfdm, 6.0, 24};
constexpr PhyRate kOfdm9{Modulation::kOfdm, 9.0, 36};
constexpr PhyRate kOfdm12{Modulation::kOfdm, 12.0, 48};
constexpr PhyRate kOfdm18{Modulation::kOfdm, 18.0, 72};
constexpr PhyRate kOfdm24{Modulation::kOfdm, 24.0, 96};
constexpr PhyRate kOfdm36{Modulation::kOfdm, 36.0, 144};
constexpr PhyRate kOfdm48{Modulation::kOfdm, 48.0, 192};
constexpr PhyRate kOfdm54{Modulation::kOfdm, 54.0, 216};

// DSSS rates (2.4 GHz only).
constexpr PhyRate kDsss1{Modulation::kDsss, 1.0, 0};
constexpr PhyRate kDsss2{Modulation::kDsss, 2.0, 0};
constexpr PhyRate kDsss11{Modulation::kDsss, 11.0, 0};

/// On-air duration of a PPDU carrying `mpdu_octets` at `rate`.
///
/// OFDM (§17.3.2.4): 20 us preamble+header (L-STF 8 + L-LTF 8 + L-SIG 4)
/// then ceil((16 + 8*octets + 6) / NDBPS) symbols of 4 us.
/// DSSS: 192 us long preamble + PSDU at the information rate.
Duration ppdu_airtime(PhyRate rate, std::size_t mpdu_octets);

/// The mandatory control-response rate for a frame received at `rate`:
/// the highest basic rate less than or equal to it (§10.6.6.5). We model
/// the common basic-rate set {6, 12, 24} Mb/s (OFDM) and {1, 2} (DSSS).
PhyRate control_response_rate(PhyRate rate);

}  // namespace politewifi::phy
