// The pluggable channel model: static geometry + dynamic fading.
//
// Decomposes a link budget into two terms with very different lifetimes:
//
//  * a **static geometry term** — log-distance path loss plus a
//    deterministic per-link lognormal shadowing draw. A pure function of
//    (frequency, distance, link identity), so every cache layer above
//    (the medium's link cache, its SoA fan-out lanes, the per-shard
//    memos) may memoize it for as long as the geometry holds.
//
//  * a **dynamic fading term** — an AR(1) process in dB,
//    x_n = rho * x_{n-1} + sigma * sqrt(1 - rho^2) * z_n, sampled once
//    per coherence interval of sim time. The innovations z_n come from a
//    counter-based RNG stream keyed by (link, seed, interval), and the
//    chain restarts from its stationary distribution at fixed block
//    boundaries, so x_n is a *pure function* of (link key, interval):
//    any evaluation order, shard count, or cache state replays the
//    identical value bit for bit. Incremental state (FadingState) is
//    only ever a cache of that function.
//
// `fading.rho = 0` disables the dynamic term entirely; the model then
// degenerates to today's memoryless channel and every byte downstream
// is unchanged (ChannelEquivalence property-tests this).
#pragma once

#include <cstdint>

namespace politewifi::phy {

/// AR(1) fading parameters. Disabled (memoryless channel) unless
/// rho > 0 and sigma_db > 0.
struct FadingParams {
  /// One-interval autocorrelation of the dB fading process, in [0, 1).
  /// 0 = no dynamic term at all (the legacy memoryless channel).
  double rho = 0.0;
  /// Stationary standard deviation of the fading term in dB.
  double sigma_db = 0.0;
  /// Coherence interval: sim-time nanoseconds between successive AR(1)
  /// samples. The fade is constant within an interval.
  std::int64_t coherence_ns = 1'000'000;  // 1 ms
};

struct ChannelParams {
  double path_loss_exponent = 3.0;
  /// Per-link lognormal shadowing spread (dB); drawn once per link.
  double shadowing_sigma_db = 4.0;
  FadingParams fading;
};

class ChannelModel {
 public:
  /// Incremental AR(1) state for one link: the last interval the chain
  /// was advanced to and its value there. Purely a cache — advancing
  /// from here replays exactly the samples a from-scratch evaluation
  /// walks through — so state may be discarded (cache collision, shard
  /// migration) at any time without changing any returned value.
  struct FadingState {
    std::uint64_t interval = 0;
    double value_db = 0.0;
    bool valid = false;
  };

  /// Intervals per stationary-restart block: at every multiple of this
  /// the chain redraws from its stationary distribution instead of
  /// continuing, bounding a cold evaluation to kBlockIntervals steps.
  /// Within a block the autocorrelation at lag k is exactly rho^k
  /// (across a boundary it drops to 0 — a 1/kBlockIntervals-weight
  /// bias the moments test budgets for).
  static constexpr std::uint64_t kBlockIntervals = 256;

  ChannelModel(ChannelParams params, std::uint64_t seed);

  const ChannelParams& params() const { return params_; }

  // --- Static geometry term ------------------------------------------------

  /// Friis reference loss at 1 m for `frequency_hz`, memoized per
  /// frequency (a fleet tunes a handful of channels). Evaluates exactly
  /// LogDistancePathLoss::reference_loss_db, so memoized and fresh
  /// values are bit-identical.
  double reference_loss_db(double frequency_hz) const;

  /// Deterministic per-link shadowing in dB: Box–Muller on two uniforms
  /// derived from the (order-independent) pair key and the seed.
  double shadowing_db(std::uint64_t id_a, std::uint64_t id_b) const;

  /// The full static gain (dB, <= 0 path loss plus shadowing):
  /// rx_dbm = tx_dbm + static_gain_db. Expression and evaluation order
  /// match LogDistancePathLoss::loss_db exactly (reference_m = 1.0,
  /// distance floored at 0.1 m), so this is bit-identical to the
  /// pre-refactor Medium::raw_link_gain_db.
  double static_gain_db(double frequency_hz, double distance_m,
                        std::uint64_t tx_id, std::uint64_t rx_id) const;

  // --- Dynamic fading term -------------------------------------------------

  bool fading_enabled() const {
    return params_.fading.rho > 0.0 && params_.fading.sigma_db > 0.0;
  }

  /// Coherence interval containing sim-time offset `elapsed_ns`.
  std::uint64_t interval_at(std::int64_t elapsed_ns) const {
    return static_cast<std::uint64_t>(elapsed_ns) /
           static_cast<std::uint64_t>(params_.fading.coherence_ns);
  }

  /// Advances `state` (for the link identified by `link_key` — use
  /// pair_key for reciprocal fading) to `interval` and returns the
  /// fading value there in dB. `steps_out`, when non-null, is
  /// incremented by the number of AR(1) samples actually drawn: 0 means
  /// the state already held this interval (a pure cache hit). A stale,
  /// invalid, future, or cross-block state is rewound to the block's
  /// stationary restart, so the result never depends on what the state
  /// held before the call.
  double advance(FadingState& state, std::uint64_t link_key,
                 std::uint64_t interval,
                 std::uint64_t* steps_out = nullptr) const;

  /// The pure function: fading at (link_key, interval) from scratch.
  double fading_db(std::uint64_t link_key, std::uint64_t interval) const {
    FadingState scratch;
    return advance(scratch, link_key, interval);
  }

  // --- Shared deterministic hashing ----------------------------------------

  static std::uint64_t splitmix(std::uint64_t x);
  /// Order-independent pair key (reciprocal links share one stream).
  static std::uint64_t pair_key(std::uint64_t a, std::uint64_t b);

 private:
  /// Standard-normal draw from counter `k`: Box–Muller on the uniforms
  /// splitmix(k), splitmix(k + 1) — the exact pattern shadowing_db uses,
  /// under a distinct key salt so the streams never alias.
  static double gaussian(std::uint64_t k);
  /// Innovation z_n of this link's fading stream.
  double innovation(std::uint64_t link_key, std::uint64_t n) const;

  ChannelParams params_;
  std::uint64_t seed_;
  /// sigma * sqrt(1 - rho^2), hoisted out of the per-sample recurrence.
  double innovation_scale_db_ = 0.0;
  /// Tiny frequency -> reference-loss memo (see reference_loss_db).
  struct RefLossMemo {
    double freq_hz = 0.0;
    double ref_loss_db = 0.0;
  };
  mutable RefLossMemo ref_loss_memo_[8];
  mutable unsigned ref_loss_memo_next_ = 0;
};

}  // namespace politewifi::phy
