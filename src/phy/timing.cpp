#include "phy/timing.h"

#include <cmath>

namespace politewifi::phy {

std::uint16_t nav_for_ack(Band band, PhyRate ack_rate) {
  constexpr std::size_t kAckOctets = 14;
  const Duration total = sifs(band) + ppdu_airtime(ack_rate, kAckOctets);
  const double us = to_microseconds(total);
  return static_cast<std::uint16_t>(std::ceil(us));
}

}  // namespace politewifi::phy
