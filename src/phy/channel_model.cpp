#include "phy/channel_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "phy/propagation.h"

namespace politewifi::phy {

namespace {

/// Salt separating the fading innovation stream from the shadowing
/// stream: both hash the same pair key and seed, and the shadowing draw
/// consumes counters k and k + 1, so the fading stream must live in an
/// unrelated region of counter space.
constexpr std::uint64_t kFadingSalt = 0x8f1d2ab04c96e35dULL;

/// Counter stride between successive innovations. Odd and avalanche-
/// friendly (the splitmix golden-ratio increment), so n -> base + n *
/// stride never collides with the paired counter k + 1 of another n.
constexpr std::uint64_t kCounterStride = 0x9e3779b97f4a7c15ULL;

}  // namespace

std::uint64_t ChannelModel::splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t ChannelModel::pair_key(std::uint64_t a, std::uint64_t b) {
  if (a > b) std::swap(a, b);
  return splitmix(a * 0x100000001b3ULL + b);
}

ChannelModel::ChannelModel(ChannelParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  PW_CHECK(params_.fading.rho >= 0.0 && params_.fading.rho < 1.0,
           "fading rho must be in [0, 1)");
  PW_CHECK(params_.fading.sigma_db >= 0.0,
           "fading sigma must be non-negative");
  PW_CHECK(!fading_enabled() || params_.fading.coherence_ns > 0,
           "fading needs a positive coherence interval");
  innovation_scale_db_ =
      params_.fading.sigma_db *
      std::sqrt(1.0 - params_.fading.rho * params_.fading.rho);
}

double ChannelModel::reference_loss_db(double frequency_hz) const {
  for (const RefLossMemo& m : ref_loss_memo_) {
    if (m.freq_hz == frequency_hz && m.freq_hz != 0.0) return m.ref_loss_db;
  }
  // Computed with the model itself, so the memoized value is the exact
  // double a per-call LogDistancePathLoss construction would produce.
  const LogDistancePathLoss model(
      {.exponent = params_.path_loss_exponent,
       .reference_m = 1.0,
       .shadowing_sigma_db = 0.0},
      frequency_hz);
  const double ref = model.reference_loss_db();
  ref_loss_memo_[ref_loss_memo_next_++ & 7] = RefLossMemo{frequency_hz, ref};
  return ref;
}

double ChannelModel::shadowing_db(std::uint64_t id_a,
                                  std::uint64_t id_b) const {
  if (params_.shadowing_sigma_db <= 0.0) return 0.0;
  // Box-Muller on two deterministic uniforms from the pair key.
  const std::uint64_t k = pair_key(id_a, id_b) ^ seed_;
  const double u1 =
      (double(splitmix(k) >> 11) + 0.5) / 9007199254740992.0;  // (0,1)
  const double u2 = (double(splitmix(k + 1) >> 11) + 0.5) / 9007199254740992.0;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return z * params_.shadowing_sigma_db;
}

double ChannelModel::static_gain_db(double frequency_hz, double distance_m,
                                    std::uint64_t tx_id,
                                    std::uint64_t rx_id) const {
  const double ref = reference_loss_db(frequency_hz);
  const double d = std::max(distance_m, 0.1);
  const double loss =
      ref + 10.0 * params_.path_loss_exponent * std::log10(d / 1.0);
  return -std::max(loss, 0.0) + shadowing_db(tx_id, rx_id);
}

double ChannelModel::gaussian(std::uint64_t k) {
  const double u1 =
      (double(splitmix(k) >> 11) + 0.5) / 9007199254740992.0;  // (0,1)
  const double u2 = (double(splitmix(k + 1) >> 11) + 0.5) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double ChannelModel::innovation(std::uint64_t link_key,
                                std::uint64_t n) const {
  const std::uint64_t base = splitmix(link_key ^ seed_ ^ kFadingSalt);
  return gaussian(base + n * kCounterStride);
}

double ChannelModel::advance(FadingState& state, std::uint64_t link_key,
                             std::uint64_t interval,
                             std::uint64_t* steps_out) const {
  if (!fading_enabled()) return 0.0;
  const std::uint64_t restart =
      (interval / kBlockIntervals) * kBlockIntervals;
  std::uint64_t n;
  double x;
  if (state.valid && state.interval <= interval && state.interval >= restart) {
    if (state.interval == interval) return state.value_db;  // pure hit
    // Continue the chain: stepping from a cached sample replays exactly
    // the tail of the from-scratch fold, so incremental and cold
    // evaluations are bit-identical.
    n = state.interval;
    x = state.value_db;
  } else {
    // Stationary restart at the block boundary: x_restart = sigma * z.
    n = restart;
    x = params_.fading.sigma_db * innovation(link_key, restart);
    if (steps_out != nullptr) ++*steps_out;
  }
  const double rho = params_.fading.rho;
  while (n < interval) {
    ++n;
    x = rho * x + innovation_scale_db_ * innovation(link_key, n);
    if (steps_out != nullptr) ++*steps_out;
  }
  state = FadingState{interval, x, true};
  return x;
}

}  // namespace politewifi::phy
