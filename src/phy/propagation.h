// Large-scale propagation: path loss, RSSI and SNR.
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "phy/channel.h"

namespace politewifi::phy {

/// Log-distance path-loss model with optional log-normal shadowing:
///   PL(d) = FSPL(d0) + 10 n log10(d / d0) + X_sigma
/// n ~= 2 free space, ~3 urban outdoor, ~3.5–4 through walls.
class LogDistancePathLoss {
 public:
  struct Params {
    double exponent = 3.0;       // n
    double reference_m = 1.0;    // d0
    double shadowing_sigma_db = 0.0;  // 0 = deterministic
  };

  LogDistancePathLoss(Params params, double frequency_hz)
      : params_(params), frequency_hz_(frequency_hz) {}

  /// Free-space path loss at the reference distance (Friis).
  double reference_loss_db() const;

  /// Path loss in dB at distance `d_m` (>= a 0.1 m floor to avoid the
  /// singularity). Shadowing, if enabled, is drawn from `rng`.
  double loss_db(double d_m, Rng* rng = nullptr) const;

  /// Received power given transmit power.
  double rx_power_dbm(double tx_dbm, double d_m, Rng* rng = nullptr) const {
    return tx_dbm - loss_db(d_m, rng);
  }

  const Params& params() const { return params_; }
  double frequency_hz() const { return frequency_hz_; }

 private:
  Params params_;
  double frequency_hz_;
};

/// SNR in dB for a received power, against the thermal noise floor plus a
/// receiver noise figure.
double snr_db(double rx_dbm, double noise_figure_db = 7.0,
              double bandwidth_hz = kChannelBandwidthHz);

}  // namespace politewifi::phy
