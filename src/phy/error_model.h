// SNR -> frame error rate.
//
// A coarse but standard model: per-modulation BER curves (AWGN
// approximations) composed into an FER over the MPDU length. It is enough
// to make marginal links lose frames, trigger the real retransmission
// machinery, and let the wardriving survey see range effects.
#pragma once

#include <cstdint>
#include <span>

#include "phy/rates.h"

namespace politewifi::phy {

/// Bit error rate at the given SNR (dB, per-symbol ES/N0 approximation)
/// for the modulation underlying `rate`.
double bit_error_rate(PhyRate rate, double snr_db);

/// Frame error rate for `mpdu_octets` at `rate` and `snr_db`:
/// 1 - (1 - BER)^(8 * octets).
double frame_error_rate(PhyRate rate, double snr_db, std::size_t mpdu_octets);

/// Batched FER: `fer_out[i]` = frame_error_rate(rate, snr_db[i],
/// mpdu_octets), bit-for-bit. The per-rate curve constants are hoisted
/// out of the loop (they are pure functions of `rate`, evaluated with
/// the scalar path's exact expressions), so the loop body is the
/// branch-light erfc/pow chain the compiler can vectorize — this is the
/// entry point the medium's SoA fan-out pass feeds a whole
/// transmission's receivers through. `fer_out.size()` must equal
/// `snr_db.size()`.
void frame_error_rate_batch(PhyRate rate, std::span<const double> snr_db,
                            std::size_t mpdu_octets,
                            std::span<double> fer_out);

/// Receive sensitivity: below this SNR the preamble is undetectable and
/// the frame is not received at all (as opposed to received-with-errors).
constexpr double kPreambleDetectSnrDb = 1.0;

}  // namespace politewifi::phy
