// SNR -> frame error rate.
//
// A coarse but standard model: per-modulation BER curves (AWGN
// approximations) composed into an FER over the MPDU length. It is enough
// to make marginal links lose frames, trigger the real retransmission
// machinery, and let the wardriving survey see range effects.
#pragma once

#include <cstdint>

#include "phy/rates.h"

namespace politewifi::phy {

/// Bit error rate at the given SNR (dB, per-symbol ES/N0 approximation)
/// for the modulation underlying `rate`.
double bit_error_rate(PhyRate rate, double snr_db);

/// Frame error rate for `mpdu_octets` at `rate` and `snr_db`:
/// 1 - (1 - BER)^(8 * octets).
double frame_error_rate(PhyRate rate, double snr_db, std::size_t mpdu_octets);

/// Receive sensitivity: below this SNR the preamble is undetectable and
/// the frame is not received at all (as opposed to received-with-errors).
constexpr double kPreambleDetectSnrDb = 1.0;

}  // namespace politewifi::phy
