#include "phy/error_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace politewifi::phy {

namespace {

double qfunc(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// BPSK/QPSK/M-QAM BER approximations over AWGN, Eb/N0 derived from
/// SNR and the rate's bits/subcarrier-symbol density.
double ber_for(double snr_linear, double bits_per_subcarrier) {
  if (bits_per_subcarrier <= 1.0) {
    return qfunc(std::sqrt(2.0 * snr_linear));  // BPSK
  }
  if (bits_per_subcarrier <= 2.0) {
    return qfunc(std::sqrt(snr_linear));  // QPSK per-bit
  }
  // Square M-QAM approximation.
  const double m = std::pow(2.0, bits_per_subcarrier);
  const double arg = std::sqrt(3.0 * snr_linear / (m - 1.0));
  return 4.0 / bits_per_subcarrier * (1.0 - 1.0 / std::sqrt(m)) * qfunc(arg);
}

}  // namespace

double bit_error_rate(PhyRate rate, double snr_db) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  double bits_per_subcarrier;
  if (rate.modulation == Modulation::kDsss) {
    // DSSS enjoys ~10.4 dB of spreading gain at 1 Mb/s.
    const double gain = 11.0 / rate.mbps;
    return qfunc(std::sqrt(2.0 * snr * gain));
  }
  // OFDM: NDBPS / 48 data subcarriers / coding rate folded into a single
  // effective bits-per-subcarrier density.
  bits_per_subcarrier = rate.bits_per_symbol / 48.0;
  double ber = ber_for(snr, bits_per_subcarrier);
  // Convolutional coding gain: rough 4 dB equivalent expressed as a
  // power-law improvement of raw BER.
  ber = std::pow(std::clamp(ber, 1e-12, 0.5), 1.35);
  return std::clamp(ber, 0.0, 0.5);
}

double frame_error_rate(PhyRate rate, double snr_db, std::size_t mpdu_octets) {
  const double ber = bit_error_rate(rate, snr_db);
  const double bits = 8.0 * double(mpdu_octets);
  const double fer = std::clamp(1.0 - std::pow(1.0 - ber, bits), 0.0, 1.0);
  // In a medium-driven run every call here is a FER-memo miss (the
  // medium memoizes), so fer_draws == fer_cache_misses is an invariant
  // the metrics block lets CI watch.
  PW_COUNT(kPhyFerDraws);
  PW_HIST(kPhyFerPpm, std::llround(fer * 1e6));
  return fer;
}

}  // namespace politewifi::phy
