#include "phy/error_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace politewifi::phy {

namespace {

double qfunc(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// One rate's BER curve, reduced to the constants the per-SNR evaluation
/// needs. Everything here is a pure function of the rate, computed with
/// the exact expressions the historical scalar code used — hoisting it
/// out of a batch loop cannot change a single output bit.
struct BerCurve {
  enum class Kind : std::uint8_t { kDsss, kBpsk, kQpsk, kQam } kind;
  double gain = 0.0;  // kDsss: spreading gain 11 / mbps
  double coef = 0.0;  // kQam: (4/bits) * (1 - 1/sqrt(M))
  double m1 = 0.0;    // kQam: M - 1
};

BerCurve curve_for(PhyRate rate) {
  if (rate.modulation == Modulation::kDsss) {
    // DSSS enjoys ~10.4 dB of spreading gain at 1 Mb/s.
    return {BerCurve::Kind::kDsss, 11.0 / rate.mbps, 0.0, 0.0};
  }
  // OFDM: NDBPS / 48 data subcarriers / coding rate folded into a single
  // effective bits-per-subcarrier density.
  const double bits_per_subcarrier = rate.bits_per_symbol / 48.0;
  if (bits_per_subcarrier <= 1.0) {
    return {BerCurve::Kind::kBpsk, 0.0, 0.0, 0.0};
  }
  if (bits_per_subcarrier <= 2.0) {
    return {BerCurve::Kind::kQpsk, 0.0, 0.0, 0.0};
  }
  // Square M-QAM approximation.
  const double m = std::pow(2.0, bits_per_subcarrier);
  return {BerCurve::Kind::kQam,
          0.0,
          4.0 / bits_per_subcarrier * (1.0 - 1.0 / std::sqrt(m)),
          m - 1.0};
}

/// BPSK/QPSK/M-QAM BER approximations over AWGN, Eb/N0 derived from
/// SNR and the rate's bits/subcarrier-symbol density.
double ber_on_curve(const BerCurve& c, double snr_db) {
  const double snr = std::pow(10.0, snr_db / 10.0);
  double ber = 0.0;
  switch (c.kind) {
    case BerCurve::Kind::kDsss:
      return qfunc(std::sqrt(2.0 * snr * c.gain));
    case BerCurve::Kind::kBpsk:
      ber = qfunc(std::sqrt(2.0 * snr));
      break;
    case BerCurve::Kind::kQpsk:
      ber = qfunc(std::sqrt(snr));  // per-bit
      break;
    case BerCurve::Kind::kQam:
      ber = c.coef * qfunc(std::sqrt(3.0 * snr / c.m1));
      break;
  }
  // Convolutional coding gain: rough 4 dB equivalent expressed as a
  // power-law improvement of raw BER (OFDM only).
  ber = std::pow(std::clamp(ber, 1e-12, 0.5), 1.35);
  return std::clamp(ber, 0.0, 0.5);
}

double fer_on_curve(const BerCurve& c, double snr_db, double mpdu_bits) {
  const double ber = ber_on_curve(c, snr_db);
  return std::clamp(1.0 - std::pow(1.0 - ber, mpdu_bits), 0.0, 1.0);
}

}  // namespace

double bit_error_rate(PhyRate rate, double snr_db) {
  return ber_on_curve(curve_for(rate), snr_db);
}

double frame_error_rate(PhyRate rate, double snr_db, std::size_t mpdu_octets) {
  const double fer =
      fer_on_curve(curve_for(rate), snr_db, 8.0 * double(mpdu_octets));
  // In a medium-driven run every call here is a FER-memo miss (the
  // medium memoizes), so fer_draws == fer_cache_misses is an invariant
  // the metrics block lets CI watch.
  PW_COUNT(kPhyFerDraws);
  PW_HIST(kPhyFerPpm, std::llround(fer * 1e6));
  return fer;
}

void frame_error_rate_batch(PhyRate rate, std::span<const double> snr_db,
                            std::size_t mpdu_octets,
                            std::span<double> fer_out) {
  const BerCurve c = curve_for(rate);
  const double mpdu_bits = 8.0 * double(mpdu_octets);
  const std::size_t n = snr_db.size();
  // The hot loop: per element only the erfc/pow chain, no rate
  // re-derivation, no instrumentation test. Each element equals the
  // scalar frame_error_rate output bit-for-bit (same curve constants,
  // same expressions).
  for (std::size_t i = 0; i < n; ++i) {
    fer_out[i] = fer_on_curve(c, snr_db[i], mpdu_bits);
  }
  PW_COUNT_N(kPhyFerDraws, n);
  for (std::size_t i = 0; i < n; ++i) {
    PW_HIST(kPhyFerPpm, std::llround(fer_out[i] * 1e6));
  }
}

}  // namespace politewifi::phy
