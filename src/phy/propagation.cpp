#include "phy/propagation.h"

#include <algorithm>
#include <cmath>

namespace politewifi::phy {

double LogDistancePathLoss::reference_loss_db() const {
  // Friis free-space loss at d0: 20 log10(4 pi d0 / lambda).
  const double lambda = wavelength(frequency_hz_);
  return 20.0 * std::log10(4.0 * M_PI * params_.reference_m / lambda);
}

double LogDistancePathLoss::loss_db(double d_m, Rng* rng) const {
  const double d = std::max(d_m, 0.1);
  double loss = reference_loss_db() +
                10.0 * params_.exponent * std::log10(d / params_.reference_m);
  if (rng != nullptr && params_.shadowing_sigma_db > 0.0) {
    loss += rng->gaussian(0.0, params_.shadowing_sigma_db);
  }
  return std::max(loss, 0.0);
}

double snr_db(double rx_dbm, double noise_figure_db, double bandwidth_hz) {
  return rx_dbm - (thermal_noise_dbm(bandwidth_hz) + noise_figure_db);
}

}  // namespace politewifi::phy
