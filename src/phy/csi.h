// Channel State Information model.
//
// CSI is the per-subcarrier complex channel response an 802.11 receiver
// estimates from the preamble of every frame — including ACKs. The paper's
// attacks measure the CSI of ACKs elicited from the victim; what makes the
// measurements informative is that human motion near the victim modulates
// the multipath geometry, and the per-subcarrier response
//
//   H(f_k) = sum_p  a_p * exp(-j 2*pi*(f_c + df_k)*tau_p + j*phi_p)
//
// moves with every path delay tau_p. Static furniture paths give a stable
// baseline; a hand reaching for the tablet adds a moving scatterer path
// whose changing delay sweeps the phasor sum — the Figure 5 fluctuations.
#pragma once

#include <complex>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "phy/channel.h"

namespace politewifi::phy {

/// One propagation path between transmitter and receiver.
struct PropagationPath {
  double delay_ns = 0.0;    // absolute propagation delay
  double amplitude = 1.0;   // linear field amplitude (relative to LOS = 1)
  double phase_rad = 0.0;   // extra phase from reflection

  friend bool operator==(const PropagationPath&,
                         const PropagationPath&) = default;
};

using PathSet = std::vector<PropagationPath>;

/// A single CSI estimate: one complex gain per populated subcarrier.
struct CsiSnapshot {
  TimePoint time{};
  std::vector<std::complex<double>> h;  // size kNumSubcarriers

  double amplitude(int subcarrier) const { return std::abs(h.at(subcarrier)); }
  double phase(int subcarrier) const { return std::arg(h.at(subcarrier)); }

  /// Mean amplitude across subcarriers (coarse RSSI proxy).
  double mean_amplitude() const;
};

/// One harvested CSI observation: a snapshot plus the RSSI it arrived
/// with. This is the unit the sensing pipelines consume (resampling,
/// subcarrier selection, spectrograms) — a PHY-layer observation, so it
/// lives here; `core::CsiCollector` produces vectors of them.
struct CsiSample {
  TimePoint time{};
  CsiSnapshot csi;
  double rssi_dbm = -100.0;
};

/// Builds the static path set for a link of length `distance_m`:
/// a line-of-sight path plus `n_reflections` environment reflections with
/// excess delays of 5–80 ns and amplitudes 0.1–0.5 of LOS. Deterministic
/// given `rng`'s state, so a scene's baseline CSI is reproducible.
PathSet make_static_paths(double distance_m, int n_reflections, Rng& rng);

/// Evaluates the CSI for static + dynamic paths at carrier `carrier_hz`,
/// adding circular Gaussian estimation noise of standard deviation
/// `noise_std` per subcarrier (models preamble SNR).
CsiSnapshot evaluate_csi(double carrier_hz, const PathSet& static_paths,
                         const PathSet& dynamic_paths, double noise_std,
                         Rng& rng, TimePoint time);

}  // namespace politewifi::phy
