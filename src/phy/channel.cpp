#include "phy/channel.h"

namespace politewifi::phy {

const char* band_name(Band band) {
  switch (band) {
    case Band::k2_4GHz: return "2.4GHz";
    case Band::k5GHz: return "5GHz";
  }
  return "?";
}

double channel_frequency_hz(Band band, int channel) {
  switch (band) {
    case Band::k2_4GHz:
      if (channel == 14) return 2484e6;  // Japan's oddball
      return (2412.0 + 5.0 * (channel - 1)) * 1e6;
    case Band::k5GHz:
      return (5000.0 + 5.0 * channel) * 1e6;
  }
  return 0.0;
}

double subcarrier_offset_hz(int index) {
  // index 0..25 -> subcarrier -26..-1; index 26..51 -> +1..+26.
  const int k = index < 26 ? index - 26 : index - 25;
  return k * kSubcarrierSpacingHz;
}

}  // namespace politewifi::phy
