#include "core/wardrive.h"

#include <algorithm>

namespace politewifi::core {

namespace {

constexpr MacAddress kAttackerMac{0x02, 0x12, 0x34, 0x56, 0x78, 0x9a};

}  // namespace

WardriveCampaign::WardriveCampaign(sim::Simulation& sim,
                                   const scenario::CityPlan& plan,
                                   WardriveConfig config)
    : sim_(sim), plan_(plan), config_(config) {
  // --- City population (created dormant) -----------------------------------
  nodes_.reserve(plan.devices().size());
  for (const auto& spec : plan.devices()) {
    sim::RadioConfig radio;
    radio.band = phy::Band::k2_4GHz;
    radio.channel = spec.channel;
    radio.position = spec.position;
    radio.power = sim::PowerProfile::mains_powered();

    sim::DeviceInfo info;
    info.name = spec.vendor + (spec.is_ap ? "-ap" : "-sta");
    info.vendor = spec.vendor;
    info.kind = spec.is_ap ? sim::DeviceKind::kAccessPoint
                           : sim::DeviceKind::kClient;

    sim::Device& device = sim_.add_device(info, spec.mac, radio);
    if (spec.is_ap) {
      mac::ApConfig ap;
      ap.ssid = "net-" + spec.mac.to_string().substr(9);
      ap.channel = spec.channel;
      ap.send_beacons = false;  // activated when the vehicle approaches
      ap.fast_keys = true;
      device.make_ap(ap);
    }
    device.radio().set_sleeping(true);
    nodes_.push_back(CityNode{&spec, &device, false, 0});
  }

  // --- Survey rig -------------------------------------------------------------
  sim::RadioConfig rig;
  rig.band = phy::Band::k2_4GHz;
  rig.channel = 6;
  rig.position = plan.route().empty() ? Position{} : plan.route().front();
  rig.power = sim::PowerProfile::mains_powered();
  attacker_ = &sim_.add_device(
      sim::DeviceInfo{.name = "survey-rig",
                      .vendor = "Realtek",
                      .chipset = "RTL8812AU",
                      .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);

  hub_ = std::make_unique<MonitorHub>(attacker_->station());
  scanner_ = std::make_unique<DeviceScanner>(
      *hub_, attacker_->radio(),
      std::vector<MacAddress>{kAttackerMac, config_.injector.spoofed_source});
  scanner_->set_on_discovery([this](const DiscoveredDevice& dev) {
    target_queue_.push_back(TargetEntry{dev.mac});
  });
  InjectorConfig inj = config_.injector;
  inj.rate = config_.inject_rate;
  injector_ = std::make_unique<FakeFrameInjector>(*attacker_, inj);
  hub_->add_tap([this](const frames::Frame& f, const phy::RxVector&,
                       bool fcs_ok) {
    if (fcs_ok) on_ack(f);
  });

  mover_ = std::make_unique<sim::WaypointMover>(
      attacker_->radio(), sim_.scheduler(),
      std::vector<Position>(plan.route()), config_.speed_mps);
}

void WardriveCampaign::activate(CityNode& node) {
  node.active = true;
  node.device->radio().set_sleeping(false);
  if (node.spec->is_ap) {
    node.device->ap()->set_beaconing(true);
  } else {
    node.traffic_generation++;
    schedule_client_traffic(node, node.traffic_generation);
  }
}

void WardriveCampaign::deactivate(CityNode& node) {
  node.active = false;
  node.traffic_generation++;  // stops the traffic loop
  if (node.spec->is_ap) node.device->ap()->set_beaconing(false);
  node.device->radio().set_sleeping(true);
}

void WardriveCampaign::schedule_client_traffic(CityNode& node,
                                               std::uint64_t generation) {
  // Jittered periodic chatter: a null keep-alive to the home AP, or a
  // broadcast probe request for unattached devices.
  const double mean_s = 1.0 / config_.client_traffic_pps;
  const Duration wait =
      from_seconds(sim_.rng().uniform(0.3 * mean_s, 1.7 * mean_s));
  sim_.scheduler().schedule_in(wait, [this, &node, generation] {
    if (!node.active || node.traffic_generation != generation) return;
    mac::Station& station = node.device->station();
    if (!node.spec->home_ap.is_zero()) {
      station.transmit_now(
          frames::make_null_function(node.spec->home_ap, node.spec->mac,
                                     station.next_sequence()),
          phy::kOfdm6);
    } else {
      frames::ProbeRequest probe;
      probe.elements.set_ssid("");  // wildcard scan
      station.transmit_now(
          frames::make_probe_request(node.spec->mac, probe,
                                     station.next_sequence()),
          phy::kOfdm6);
    }
    schedule_client_traffic(node, generation);
  });
}

void WardriveCampaign::hop_tick() {
  if (finished_ || config_.hop_channels.empty()) return;
  hop_index_ = (hop_index_ + 1) % config_.hop_channels.size();
  attacker_->radio().set_channel(config_.hop_channels[hop_index_]);
  sim_.scheduler().schedule_in(config_.hop_dwell, [this] { hop_tick(); });
}

void WardriveCampaign::activation_tick() {
  if (finished_) return;
  const Position rig = attacker_->radio().position();
  for (auto& node : nodes_) {
    const double d = distance(rig, node.spec->position);
    if (!node.active && d <= config_.activation_range_m) {
      activate(node);
    } else if (node.active && d > config_.activation_range_m * 1.2) {
      deactivate(node);
    }
  }
  sim_.scheduler().schedule_in(config_.activation_tick,
                               [this] { activation_tick(); });
}

void WardriveCampaign::injection_tick() {
  if (finished_) return;
  // Round-robin over discovered-but-unverified targets that are fresh,
  // loud enough, and under the attempt cap.
  const auto& devices = scanner_->devices();
  const TimePoint now = sim_.now();
  for (std::size_t scanned = 0;
       scanned < target_queue_.size() && !target_queue_.empty(); ++scanned) {
    next_target_ = (next_target_ + 1) % target_queue_.size();
    TargetEntry& entry = target_queue_[next_target_];
    if (entry.done) continue;
    if (responded_.count(entry.mac) > 0 ||
        entry.attempts >= config_.max_attempts_per_target) {
      entry.done = true;  // permanently ineligible: skip by flag from now on
      continue;
    }
    const auto it = devices.find(entry.mac);
    if (it == devices.end()) continue;
    if (it->second.last_rssi_dbm < config_.inject_min_rssi_dbm) continue;
    if (now - it->second.last_seen > config_.inject_freshness) continue;

    ++entry.attempts;
    last_injection_at_ = now;
    last_injection_target_ = entry.mac;
    injector_->inject_one(entry.mac);
    break;  // one injection per tick
  }
  sim_.scheduler().schedule_in(config_.injection_tick,
                               [this] { injection_tick(); });
}

void WardriveCampaign::on_ack(const frames::Frame& frame) {
  if (!frame.fc.is_ack() && !frame.fc.is_cts()) return;
  if (frame.addr1 != config_.injector.spoofed_source) return;
  ++acks_observed_;
  // Attribute to the injection this ACK answers: it must have left within
  // the SIFS + airtime window just before this ACK arrived.
  if (!last_injection_target_.is_zero() &&
      sim_.now() - last_injection_at_ <= microseconds(800)) {
    responded_.insert(last_injection_target_);
  }
}

WardriveReport WardriveCampaign::run() {
  const TimePoint started = sim_.now();
  mover_->start();
  activation_tick();
  injection_tick();
  if (!config_.hop_channels.empty()) {
    attacker_->radio().set_channel(config_.hop_channels.front());
    sim_.scheduler().schedule_in(config_.hop_dwell, [this] { hop_tick(); });
  }

  const TimePoint deadline = started + config_.max_duration;
  while (!mover_->finished() && sim_.now() < deadline) {
    sim_.run_for(seconds(1));
  }
  // Loiter at the route's end to verify late discoveries.
  sim_.run_for(config_.final_loiter);
  finished_ = true;

  WardriveReport report;
  report.elapsed = sim_.now() - started;
  report.distance_m = mover_->distance_travelled();
  report.population = nodes_.size();
  report.discovered = scanner_->devices().size();
  report.discovered_aps = scanner_->count_aps();
  report.discovered_clients = scanner_->count_clients();
  for (const auto& mac : responded_) {
    ++report.responded;
    const auto it = scanner_->devices().find(mac);
    if (it != scanner_->devices().end() && it->second.is_ap) {
      ++report.responded_aps;
    } else {
      ++report.responded_clients;
    }
  }
  report.fake_frames_sent = injector_->stats().frames_injected;
  report.acks_observed = acks_observed_;
  report.ppdu_acquires = sim_.medium().ppdu_pool().stats().acquires;
  report.ppdu_allocations = sim_.medium().ppdu_pool().stats().allocations;
  report.ppdu_bytes_copied = sim_.medium().stats().ppdu_bytes_copied;
  report.client_table = tally_vendors(scanner_->devices(), /*aps=*/false);
  report.ap_table = tally_vendors(scanner_->devices(), /*aps=*/true);
  report.distinct_vendors = [&] {
    std::set<std::string> vendors;
    for (const auto& row : report.client_table.rows) vendors.insert(row.vendor);
    for (const auto& row : report.ap_table.rows) vendors.insert(row.vendor);
    return vendors.size();
  }();
  return report;
}

}  // namespace politewifi::core

namespace politewifi::core {

common::Json WardriveReport::to_json() const {
  common::Json j;
  j["elapsed_s"] = to_seconds(elapsed);
  j["distance_m"] = distance_m;
  j["population"] = population;
  j["discovered"] = discovered;
  j["discovered_aps"] = discovered_aps;
  j["discovered_clients"] = discovered_clients;
  j["responded"] = responded;
  j["responded_aps"] = responded_aps;
  j["responded_clients"] = responded_clients;
  j["response_rate"] = response_rate();
  j["distinct_vendors"] = distinct_vendors;
  j["fake_frames_sent"] = fake_frames_sent;
  j["acks_observed"] = acks_observed;
  j["ppdu_acquires"] = ppdu_acquires;
  j["ppdu_allocations"] = ppdu_allocations;
  j["ppdu_bytes_copied"] = ppdu_bytes_copied;
  j["client_vendors"] = client_table.to_json();
  j["ap_vendors"] = ap_table.to_json();
  return j;
}

}  // namespace politewifi::core
