#include "core/localizer.h"

#include <cmath>

namespace politewifi::core {

LocalizationResult trilaterate(const std::vector<RangeObservation>& ranges,
                               Position initial_guess, int max_iterations,
                               double tolerance_m) {
  LocalizationResult result;
  if (ranges.size() < 2) return result;

  // Default initial guess: weighted centroid of the anchors.
  Position p = initial_guess;
  if (p.x == 0.0 && p.y == 0.0) {
    double wsum = 0.0;
    for (const auto& r : ranges) {
      p.x += r.anchor.x * r.weight;
      p.y += r.anchor.y * r.weight;
      wsum += r.weight;
    }
    if (wsum > 0.0) {
      p.x /= wsum;
      p.y /= wsum;
    }
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Normal equations for the linearized residuals r_i = |p - a_i| - d_i
    // with Jacobian row J_i = (p - a_i) / |p - a_i|.
    double jtj00 = 0, jtj01 = 0, jtj11 = 0, jtr0 = 0, jtr1 = 0;
    for (const auto& obs : ranges) {
      const double dx = p.x - obs.anchor.x;
      const double dy = p.y - obs.anchor.y;
      const double dist = std::max(std::hypot(dx, dy), 1e-6);
      const double r = dist - obs.distance_m;
      const double jx = dx / dist, jy = dy / dist;
      const double w = obs.weight;
      jtj00 += w * jx * jx;
      jtj01 += w * jx * jy;
      jtj11 += w * jy * jy;
      jtr0 += w * jx * r;
      jtr1 += w * jy * r;
    }
    const double det = jtj00 * jtj11 - jtj01 * jtj01;
    if (std::abs(det) < 1e-12) break;  // collinear anchors
    // Solve JtJ * step = -Jtr.
    const double step_x = (-jtr0 * jtj11 + jtr1 * jtj01) / det;
    const double step_y = (-jtr1 * jtj00 + jtr0 * jtj01) / det;
    p.x += step_x;
    p.y += step_y;
    if (std::hypot(step_x, step_y) < tolerance_m) {
      result.converged = true;
      break;
    }
  }

  result.position = p;
  double ss = 0.0, wsum = 0.0;
  for (const auto& obs : ranges) {
    const double r = distance(p, obs.anchor) - obs.distance_m;
    ss += obs.weight * r * r;
    wsum += obs.weight;
  }
  result.residual_m = wsum > 0.0 ? std::sqrt(ss / wsum) : 0.0;
  return result;
}

}  // namespace politewifi::core

namespace politewifi::core {

common::Json LocalizationResult::to_json() const {
  common::Json j;
  j["x"] = position.x;
  j["y"] = position.y;
  j["residual_m"] = residual_m;
  j["iterations"] = iterations;
  j["converged"] = converged;
  return j;
}

}  // namespace politewifi::core
