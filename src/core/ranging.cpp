#include "core/ranging.h"

#include <algorithm>
#include <cmath>

#include "phy/timing.h"

namespace politewifi::core {

RttRanger::RttRanger(sim::Simulation& sim, sim::Device& attacker,
                     RangerConfig config)
    : sim_(sim),
      attacker_(attacker),
      config_(config),
      hub_(attacker.station()),
      injector_(attacker, config.injector) {
  hub_.add_tap([this](const frames::Frame& f, const phy::RxVector&,
                      bool fcs_ok) {
    if (!fcs_ok || !f.fc.is_ack()) return;
    if (f.addr1 != injector_.config().spoofed_source) return;
    // The tap runs when the PPDU finished arriving: this IS the RX-end
    // timestamp a real chip would record.
    ack_rx_end_ = attacker_.radio().now();
  });
}

std::optional<double> RttRanger::measure_once(const MacAddress& target) {
  const phy::Band band = attacker_.radio().config().band;
  const phy::PhyRate rate = injector_.config().rate;
  const phy::PhyRate ack_rate = phy::control_response_rate(rate);

  // Known timeline components.
  const std::size_t fake_octets =
      injector_.config().use_rts ? 20 : 28;  // RTS or null-function MPDU
  const Duration fake_airtime = phy::ppdu_airtime(rate, fake_octets);
  const Duration ack_airtime = phy::ppdu_airtime(ack_rate, 14);
  const Duration known =
      fake_airtime + phy::sifs(band) + ack_airtime;

  ack_rx_end_.reset();
  const TimePoint injected_at = sim_.now();
  injector_.inject_one(target);
  sim_.run_for(config_.probe_interval);

  if (!ack_rx_end_) return std::nullopt;
  const Duration rtt = *ack_rx_end_ - injected_at;
  const Duration two_way = rtt - known;
  const double d =
      to_seconds(two_way) * kSpeedOfLight / 2.0;
  if (d < -5.0 || d > 10000.0) return std::nullopt;  // garbage
  return std::max(d, 0.0);
}

RangeEstimate RttRanger::range(const MacAddress& target, int n) {
  std::vector<double> samples;
  RangeEstimate est;
  for (int i = 0; i < n; ++i) {
    if (const auto d = measure_once(target)) {
      samples.push_back(*d);
    } else {
      ++est.lost;
    }
  }
  if (samples.empty()) return est;

  // Outlier rejection around the median.
  std::vector<double> sorted = samples;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double med = sorted[sorted.size() / 2];
  double var = 0.0;
  for (const double d : samples) var += (d - med) * (d - med);
  const double sigma = std::sqrt(var / double(samples.size()));

  double sum = 0.0, sumsq = 0.0;
  std::size_t kept = 0;
  for (const double d : samples) {
    if (sigma > 0.0 && std::abs(d - med) > config_.outlier_sigma * sigma) {
      continue;
    }
    sum += d;
    sumsq += d * d;
    ++kept;
  }
  if (kept == 0) return est;
  est.measurements = kept;
  est.mean_m = sum / double(kept);
  est.stddev_m =
      std::sqrt(std::max(0.0, sumsq / double(kept) - est.mean_m * est.mean_m));

  if (config_.use_minimum_filter) {
    // Turnaround jitter is one-sided (an ACK can be late, never early),
    // so the fastest decile carries the unbiased distance.
    std::sort(sorted.begin(), sorted.end());
    const std::size_t decile =
        std::max<std::size_t>(1, sorted.size() / 10);
    double fast = 0.0;
    for (std::size_t i = 0; i < decile; ++i) fast += sorted[i];
    est.distance_m = fast / double(decile);
  } else {
    est.distance_m = est.mean_m;
  }
  return est;
}

}  // namespace politewifi::core

namespace politewifi::core {

common::Json RangeEstimate::to_json() const {
  common::Json j;
  j["distance_m"] = distance_m;
  j["mean_m"] = mean_m;
  j["stddev_m"] = stddev_m;
  j["measurements"] = measurements;
  j["lost"] = lost;
  return j;
}

}  // namespace politewifi::core
