// Monitor-mode fan-out.
//
// A Station exposes a single sniffer hook; the attacker's toolchain wants
// several consumers at once (device scanner, ACK verifier, CSI collector
// — the paper's three "threads"). MonitorHub installs itself as the hook
// and fans every frame out to registered taps.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "mac/station.h"

namespace politewifi::core {

class MonitorHub {
 public:
  using Tap = std::function<void(const frames::Frame&, const phy::RxVector&,
                                 bool fcs_ok)>;

  explicit MonitorHub(mac::Station& station) {
    station.set_sniffer([this](const frames::Frame& f, const phy::RxVector& rx,
                               bool fcs_ok) {
      for (const auto& [id, tap] : taps_) tap(f, rx, fcs_ok);
    });
  }

  std::uint64_t add_tap(Tap tap) {
    const std::uint64_t id = next_id_++;
    taps_.emplace_back(id, std::move(tap));
    return id;
  }

  void remove_tap(std::uint64_t id) {
    std::erase_if(taps_, [id](const auto& e) { return e.first == id; });
  }

 private:
  std::vector<std::pair<std::uint64_t, Tap>> taps_;
  std::uint64_t next_id_ = 1;
};

}  // namespace politewifi::core
