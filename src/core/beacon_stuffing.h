// Beacon stuffing — association-free broadcast data (§5's related work,
// Chandra et al. [8] / LoWS [29], by the same frame-injection toolbox).
//
// A sender embeds an application payload in vendor-specific information
// elements of ordinary beacon frames; any sniffing receiver decodes it
// without ever joining a network. The paper cites this as the benign
// face of frame injection (location-based coupons, Wi-LE-style
// low-power links); we implement it because the same injector/sniffer
// substrate supports it directly.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/monitor.h"
#include "sim/device.h"

namespace politewifi::core {

/// Wire format inside the vendor IE (id 221):
///   [magic(2) = 0x50 0x57] [seq(1)] [total(1)] [chunk bytes...]
/// Messages larger than one IE are chunked across consecutive beacons.
struct StuffedChunk {
  std::uint8_t seq = 0;
  std::uint8_t total = 1;
  Bytes payload;

  Bytes serialize() const;
  static std::optional<StuffedChunk> parse(std::span<const std::uint8_t> ie);
  static constexpr std::size_t kMaxChunkPayload = 200;  // fits a 255-B IE
};

struct BeaconStufferConfig {
  std::string ssid = "FreeCoupons";  // honest-looking carrier network
  Duration beacon_interval = milliseconds(102);
  phy::PhyRate rate = phy::kOfdm6;
};

/// Broadcasts a message by stuffing it into beacon frames. The sender
/// needs no clients and the receivers need no association — exactly the
/// deployment the paper's related work describes.
class BeaconStuffer {
 public:
  BeaconStuffer(sim::Device& sender, BeaconStufferConfig config = {});

  /// Starts cycling the message's chunks, one per beacon.
  void broadcast(const std::string& message);
  void stop();

  std::uint64_t beacons_sent() const { return beacons_sent_; }

 private:
  void send_next();

  sim::Device& sender_;
  BeaconStufferConfig config_;
  std::vector<StuffedChunk> chunks_;
  std::size_t next_chunk_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t beacons_sent_ = 0;
};

/// Sniffs beacons (no association!) and reassembles stuffed messages.
class BeaconStuffingReceiver {
 public:
  using MessageCallback = std::function<void(const std::string&)>;

  /// Subscribes to `hub` (monitor tap of any station in range).
  explicit BeaconStuffingReceiver(MonitorHub& hub);

  void set_on_message(MessageCallback cb) { on_message_ = std::move(cb); }

  const std::vector<std::string>& messages() const { return messages_; }

 private:
  void on_frame(const frames::Frame& frame);
  void try_assemble();

  std::vector<std::optional<Bytes>> pending_;
  std::vector<std::string> messages_;
  MessageCallback on_message_;
};

}  // namespace politewifi::core
