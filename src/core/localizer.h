// Non-cooperative localization from ACK-derived ranges.
//
// Combine RttRanger measurements taken from several attacker positions
// (a drive-by, a walk around the building, a drone circuit — Wi-Peep's
// setting) and solve for the victim's position by nonlinear least
// squares. The victim contributes nothing but politeness.
#pragma once

#include <vector>

#include "common/json.h"
#include "common/units.h"

namespace politewifi::core {

struct RangeObservation {
  Position anchor;       // where the attacker was
  double distance_m;     // ACK-ToF range estimate from there
  double weight = 1.0;   // e.g. 1/variance
};

struct LocalizationResult {
  Position position{};
  double residual_m = 0.0;   // RMS range residual at the solution
  int iterations = 0;
  bool converged = false;

  common::Json to_json() const;
};

/// Gauss-Newton trilateration. Needs >= 3 non-collinear anchors for an
/// unambiguous fix; with exactly 2 it settles on one of the two mirror
/// solutions (whichever the initial guess is nearer).
LocalizationResult trilaterate(const std::vector<RangeObservation>& ranges,
                               Position initial_guess = {},
                               int max_iterations = 50,
                               double tolerance_m = 1e-4);

}  // namespace politewifi::core
