// Battery-drain attack (§4.2) and the Figure 6 measurement harness.
//
// Bombards a power-saving victim with fake frames and measures its mean
// power draw. Nothing here models "attack power" directly — the numbers
// emerge from the victim's own power-save state machine (idle timer,
// beacon wakes) and per-frame RX/ACK-TX energy in the radio model.
#pragma once

#include "common/json.h"
#include "core/injector.h"
#include "sim/network.h"

namespace politewifi::core {

struct BatteryAttackResult {
  double rate_pps = 0.0;
  double avg_power_mw = 0.0;
  double sleep_fraction = 0.0;     // time spent dozing during measurement
  std::uint64_t acks_elicited = 0; // victim ACK count delta
  std::uint64_t frames_injected = 0;
  /// Zero-copy pipeline health during the measured window: injected
  /// frames served by the attacker radio's template cache (vs full
  /// serializations) and fresh PPDU buffers the medium had to allocate.
  /// In steady state the hit rate approaches 1 and the allocation delta
  /// approaches 0 — the bench regression gate watches the same counters.
  std::uint64_t template_hits = 0;
  std::uint64_t template_misses = 0;
  std::uint64_t pool_allocations = 0;

  common::Json to_json() const;
};

class BatteryDrainAttack {
 public:
  /// `victim` should be a power-save client (ESP8266-class profile).
  BatteryDrainAttack(sim::Simulation& sim, sim::Device& attacker,
                     sim::Device& victim,
                     InjectorConfig config = InjectorConfig{});

  /// Runs the attack at `rate_pps` (0 = baseline, no attack): `warmup` to
  /// let the victim settle into its duty cycle, then a measured window.
  BatteryAttackResult run(double rate_pps, Duration warmup,
                          Duration measure);

 private:
  sim::Simulation& sim_;
  sim::Device& attacker_;
  sim::Device& victim_;
  FakeFrameInjector injector_;
};

/// §4.2's closing arithmetic: hours to drain each camera battery at the
/// measured attack power.
struct CameraDrainProjection {
  std::string camera;
  double battery_mwh;
  double attack_power_mw;
  double hours_to_empty;

  common::Json to_json() const;
};

CameraDrainProjection project_drain(const std::string& camera,
                                    double battery_mwh,
                                    double attack_power_mw);

}  // namespace politewifi::core
