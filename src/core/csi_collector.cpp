#include "core/csi_collector.h"

namespace politewifi::core {

CsiCollector::CsiCollector(sim::Device& attacker, MacAddress target,
                           InjectorConfig config)
    : attacker_(attacker),
      target_(target),
      hub_(attacker.station()),
      injector_(attacker, config),
      sniffer_(hub_, attacker.radio(), config.spoofed_source) {
  // With a single fixed victim every matching ACK is attributable, so the
  // collector records straight off the monitor tap.
  hub_.add_tap([this](const frames::Frame& f, const phy::RxVector& rx,
                      bool fcs_ok) {
    if (!fcs_ok) return;
    if (!(f.fc.is_ack() || f.fc.is_cts())) return;
    if (f.addr1 != injector_.config().spoofed_source) return;
    if (!rx.csi) return;
    samples_.push_back(CsiSample{attacker_.radio().now(), *rx.csi,
                                 rx.rssi_dbm});
  });
}

void CsiCollector::start(double rate_pps) {
  injector_.start_stream(target_, rate_pps);
}

void CsiCollector::stop() { injector_.stop_stream(target_); }

std::vector<CsiCollector::AmplitudePoint> CsiCollector::amplitude_series(
    int subcarrier) const {
  std::vector<AmplitudePoint> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back({to_seconds(s.time.time_since_epoch()),
                   s.csi.amplitude(subcarrier)});
  }
  return out;
}

}  // namespace politewifi::core
