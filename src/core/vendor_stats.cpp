#include "core/vendor_stats.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace politewifi::core {

std::vector<VendorRow> VendorTable::top_with_others(std::size_t n) const {
  std::vector<VendorRow> out;
  std::size_t others = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i < n) {
      out.push_back(rows[i]);
    } else {
      others += rows[i].devices;
    }
  }
  if (others > 0) out.push_back({"Others", others});
  return out;
}

VendorTable tally_vendors(
    const std::unordered_map<MacAddress, DiscoveredDevice>& devices,
    bool aps) {
  std::map<std::string, std::size_t> counts;
  VendorTable table;
  // pw-analyze: allow(unordered-iteration): folds the hash map into a
  // sorted std::map (rows then re-sorted by count/name) before any
  // Table 2 row is emitted; output order is independent of hash order.
  for (const auto& [mac, dev] : devices) {
    if (dev.is_ap != aps) continue;
    ++counts[dev.vendor.value_or("(unknown)")];
    ++table.total;
  }
  table.rows.reserve(counts.size());
  for (const auto& [vendor, n] : counts) table.rows.push_back({vendor, n});
  std::sort(table.rows.begin(), table.rows.end(),
            [](const VendorRow& a, const VendorRow& b) {
              return a.devices != b.devices ? a.devices > b.devices
                                            : a.vendor < b.vendor;
            });
  table.distinct_vendors = table.rows.size();
  return table;
}

void print_table2(std::ostream& os, const VendorTable& clients,
                  const VendorTable& aps, std::size_t top_n) {
  const auto left = clients.top_with_others(top_n);
  const auto right = aps.top_with_others(top_n);

  os << "  WiFi Client Device           |  WiFi Access Point\n";
  os << "  Vendor            # devices  |  Vendor            # devices\n";
  os << "  -----------------------------+------------------------------\n";
  const std::size_t rows = std::max(left.size(), right.size());
  char line[160];
  for (std::size_t i = 0; i < rows; ++i) {
    const std::string lv = i < left.size() ? left[i].vendor : "";
    const std::string lc =
        i < left.size() ? std::to_string(left[i].devices) : "";
    const std::string rv = i < right.size() ? right[i].vendor : "";
    const std::string rc =
        i < right.size() ? std::to_string(right[i].devices) : "";
    std::snprintf(line, sizeof line, "  %-18s %9s  |  %-18s %9s\n",
                  lv.c_str(), lc.c_str(), rv.c_str(), rc.c_str());
    os << line;
  }
  std::snprintf(line, sizeof line, "  %-18s %9zu  |  %-18s %9zu\n", "Total",
                clients.total, "Total", aps.total);
  os << "  -----------------------------+------------------------------\n"
     << line;
}

}  // namespace politewifi::core

namespace politewifi::core {

common::Json VendorRow::to_json() const {
  common::Json j;
  j["vendor"] = vendor;
  j["devices"] = devices;
  return j;
}

common::Json VendorTable::to_json() const {
  common::Json j;
  j["total"] = total;
  j["distinct_vendors"] = distinct_vendors;
  auto& out = j["rows"];
  out = common::Json::array();
  for (const auto& row : rows) out.push_back(row.to_json());
  return j;
}

}  // namespace politewifi::core
