// The §3 wardriving survey: a vehicle-mounted rig drives a city route,
// discovers every WiFi device it hears, sends each one fake 802.11
// frames, and verifies that they acknowledge.
//
// The paper implements this as three Scapy threads (discover / inject /
// verify); in the discrete-event world the same three stages run as
// event-driven components sharing one monitor-mode radio:
//   - DeviceScanner     <- passive sniffing (thread 1)
//   - injection pump    <- fake frames to the target list (thread 2)
//   - verification tap  <- ACKs to the spoofed address (thread 3)
#pragma once

#include <set>

#include "common/json.h"
#include "core/ack_sniffer.h"
#include "core/injector.h"
#include "core/scanner.h"
#include "core/vendor_stats.h"
#include "scenario/city.h"
#include "sim/mobility.h"
#include "sim/network.h"

namespace politewifi::core {

struct WardriveConfig {
  double speed_mps = 11.0;  // ~40 km/h urban survey speed
  /// City devices farther than this from the vehicle are dormant.
  double activation_range_m = 240.0;
  Duration activation_tick = milliseconds(500);
  /// One injection per tick keeps ACK attribution unambiguous.
  Duration injection_tick = milliseconds(2);
  int max_attempts_per_target = 25;
  /// Only inject at targets heard recently and loudly enough to answer.
  double inject_min_rssi_dbm = -93.0;
  Duration inject_freshness = seconds(5);
  /// Loiter after the route ends to verify late discoveries.
  Duration final_loiter = seconds(15);
  /// Idle client chatter that makes clients discoverable.
  double client_traffic_pps = 1.2;
  Duration max_duration = minutes(75);
  InjectorConfig injector{};
  /// Injection runs at 1 Mb/s DSSS, like real long-range rigs: the
  /// ~10 dB spreading gain keeps the fake frame (and the DSSS ACK it
  /// elicits) decodable all the way down to the discovery threshold.
  phy::PhyRate inject_rate = phy::kDsss1;
  /// Channel-hopping rig: when non-empty, the survey radio cycles these
  /// channels with `hop_dwell` on each (needed for multi-channel cities).
  std::vector<int> hop_channels{};
  Duration hop_dwell = milliseconds(250);
};

struct WardriveReport {
  Duration elapsed{};
  double distance_m = 0.0;
  std::size_t population = 0;       // devices placed in the city
  std::size_t discovered = 0;
  std::size_t discovered_aps = 0;
  std::size_t discovered_clients = 0;
  std::size_t responded = 0;        // discovered devices that ACKed a fake
  std::size_t responded_aps = 0;
  std::size_t responded_clients = 0;
  std::size_t distinct_vendors = 0;
  std::uint64_t fake_frames_sent = 0;
  std::uint64_t acks_observed = 0;
  /// Zero-copy pipeline accounting for the whole campaign (the city's
  /// entire frame volume flows through one medium): PPDU buffers the pool
  /// handed out vs fresh heap allocations, and payload octets copied
  /// after transmit (copy-on-corrupt only). Allocations plateau once the
  /// pool warms up; a regression here shows up as a growing ratio.
  std::uint64_t ppdu_acquires = 0;
  std::uint64_t ppdu_allocations = 0;
  std::uint64_t ppdu_bytes_copied = 0;
  VendorTable client_table;
  VendorTable ap_table;

  double response_rate() const {
    return discovered == 0 ? 0.0 : double(responded) / double(discovered);
  }

  /// Canonical JSON view (runtime result sinks, goldens).
  common::Json to_json() const;
};

class WardriveCampaign {
 public:
  WardriveCampaign(sim::Simulation& sim, const scenario::CityPlan& plan,
                   WardriveConfig config = WardriveConfig{});

  /// Drives the route to completion (or max_duration) and reports.
  WardriveReport run();

  const DeviceScanner& scanner() const { return *scanner_; }
  const std::set<MacAddress>& responded() const { return responded_; }
  sim::Device& attacker() { return *attacker_; }

 private:
  struct CityNode {
    const scenario::CityDeviceSpec* spec = nullptr;
    sim::Device* device = nullptr;
    bool active = false;
    std::uint64_t traffic_generation = 0;
  };

  void activation_tick();
  void hop_tick();
  void activate(CityNode& node);
  void deactivate(CityNode& node);
  void schedule_client_traffic(CityNode& node, std::uint64_t generation);
  void injection_tick();
  void on_ack(const frames::Frame& frame);

  sim::Simulation& sim_;
  const scenario::CityPlan& plan_;
  WardriveConfig config_;

  sim::Device* attacker_ = nullptr;
  std::unique_ptr<MonitorHub> hub_;
  std::unique_ptr<DeviceScanner> scanner_;
  std::unique_ptr<FakeFrameInjector> injector_;
  std::unique_ptr<sim::WaypointMover> mover_;

  /// One round-robin slot per discovered device. `done` latches once the
  /// target has responded or exhausted its attempts, so the 500 Hz
  /// injection scan skips it with a flag test instead of re-running the
  /// set/map lookups every tick. Entries are never removed — indices (and
  /// therefore the round-robin injection order) stay identical to a
  /// naive rescan.
  struct TargetEntry {
    MacAddress mac;
    int attempts = 0;
    bool done = false;
  };

  std::vector<CityNode> nodes_;
  std::vector<TargetEntry> target_queue_;  // discovered, pending verification
  std::size_t next_target_ = 0;
  std::set<MacAddress> responded_;
  // Attribution state for the verification tap.
  TimePoint last_injection_at_{};
  MacAddress last_injection_target_{};
  std::uint64_t acks_observed_ = 0;
  std::size_t hop_index_ = 0;
  bool finished_ = false;
};

}  // namespace politewifi::core
