// Passive device discovery — the wardriving rig's first "thread".
//
// Sniffs all traffic and classifies transmitters as APs or clients from
// the frames they originate: beacons/probe responses/FromDS data mark an
// AP; probe requests/ToDS data mark a client. Exactly the evidence the
// paper's discovery thread had available.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "core/monitor.h"
#include "scenario/oui_db.h"

namespace politewifi::core {

struct DiscoveredDevice {
  MacAddress mac;
  bool is_ap = false;
  TimePoint first_seen{};
  TimePoint last_seen{};
  double last_rssi_dbm = -100.0;
  std::optional<std::string> vendor;  // OUI lookup
  std::uint64_t frames_seen = 0;
};

class DeviceScanner {
 public:
  using DiscoveryCallback = std::function<void(const DiscoveredDevice&)>;

  /// Subscribes to `hub`. `env` supplies timestamps (the attacker's
  /// radio). Addresses in `ignore` (the attacker's own and spoofed MACs)
  /// are never reported.
  DeviceScanner(MonitorHub& hub, const mac::MacEnvironment& env,
                std::vector<MacAddress> ignore = {});

  void set_on_discovery(DiscoveryCallback cb) { on_discovery_ = std::move(cb); }

  const std::unordered_map<MacAddress, DiscoveredDevice>& devices() const {
    return devices_;
  }

  std::size_t count_aps() const;
  std::size_t count_clients() const;

 private:
  void on_frame(const frames::Frame& frame, const phy::RxVector& rx);

  const mac::MacEnvironment& env_;
  std::vector<MacAddress> ignore_;
  std::unordered_map<MacAddress, DiscoveredDevice> devices_;
  DiscoveryCallback on_discovery_;
};

}  // namespace politewifi::core
