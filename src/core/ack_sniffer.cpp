#include "core/ack_sniffer.h"

namespace politewifi::core {

AckSniffer::AckSniffer(MonitorHub& hub, const mac::MacEnvironment& env,
                       MacAddress ra_filter)
    : env_(env), ra_filter_(ra_filter) {
  hub.add_tap([this](const frames::Frame& f, const phy::RxVector& rx,
                     bool fcs_ok) {
    if (fcs_ok) on_frame(f, rx);
  });
}

void AckSniffer::note_injection(const MacAddress& target) {
  pending_.push_back({env_.now(), target});
  // Bound the queue: drop entries far outside the window.
  const TimePoint cutoff = env_.now() - 10 * window_;
  while (!pending_.empty() && pending_.front().at < cutoff) {
    pending_.pop_front();
  }
}

void AckSniffer::on_frame(const frames::Frame& frame,
                          const phy::RxVector& rx) {
  const bool ack = frame.fc.is_ack();
  const bool cts = frame.fc.is_cts();
  if (!ack && !cts) return;
  if (frame.addr1 != ra_filter_) return;

  AckObservation obs;
  obs.time = env_.now();
  obs.ra = frame.addr1;
  obs.rssi_dbm = rx.rssi_dbm;
  obs.csi = rx.csi;
  obs.is_cts = cts;

  // Attribute to the most recent injection inside the window.
  const TimePoint now = env_.now();
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    if (now - it->at <= window_) {
      obs.attributed_victim = it->target;
      break;
    }
  }
  acks_.push_back(std::move(obs));
}

std::size_t AckSniffer::count_from(const MacAddress& victim) const {
  std::size_t n = 0;
  for (const auto& a : acks_) n += a.attributed_victim == victim ? 1 : 0;
  return n;
}

}  // namespace politewifi::core
