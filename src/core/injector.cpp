#include "core/injector.h"

#include "phy/timing.h"

namespace politewifi::core {

FakeFrameInjector::FakeFrameInjector(sim::Device& attacker,
                                     InjectorConfig config)
    : attacker_(attacker), config_(config) {}

const frames::Frame& FakeFrameInjector::craft(const MacAddress& target) {
  auto it = crafted_.find(target);
  if (it == crafted_.end()) {
    // NAV long enough for CTS; the victim answers with CTS at SIFS.
    it = crafted_
             .emplace(target,
                      config_.use_rts
                          ? frames::make_rts(target, config_.spoofed_source, 60)
                          : frames::make_null_function(
                                target, config_.spoofed_source, 0))
             .first;
  }
  if (!config_.use_rts) {
    // Only the sequence number advances between injections (RTS frames
    // carry no sequence control and consume none).
    it->second.seq.sequence = sequence_++ & 0x0FFF;
  }
  return it->second;
}

void FakeFrameInjector::inject_one(const MacAddress& target) {
  attacker_.station().transmit_now(craft(target), config_.rate);
  ++stats_.frames_injected;
}

void FakeFrameInjector::inject_spoofed_deauth(const MacAddress& victim,
                                              const MacAddress& spoofed_ap) {
  attacker_.station().transmit_now(
      frames::make_deauth(victim, spoofed_ap, spoofed_ap,
                          frames::ReasonCode::kDeauthLeaving,
                          sequence_++ & 0x0FFF),
      config_.rate);
  ++stats_.frames_injected;
}

void FakeFrameInjector::start_stream(const MacAddress& target,
                                     double rate_pps) {
  if (rate_pps <= 0.0) {
    stop_stream(target);
    return;
  }
  Stream& s = streams_[target];
  s.rate_pps = rate_pps;
  s.generation = next_generation_++;
  ++stats_.streams_started;
  schedule_next(target, s.generation);
}

void FakeFrameInjector::stop_stream(const MacAddress& target) {
  streams_.erase(target);  // pending events see a missing/stale generation
}

void FakeFrameInjector::stop_all() { streams_.clear(); }

void FakeFrameInjector::schedule_next(const MacAddress& target,
                                      std::uint64_t generation) {
  const auto it = streams_.find(target);
  if (it == streams_.end() || it->second.generation != generation) return;

  const Duration interval = from_seconds(1.0 / it->second.rate_pps);
  attacker_.radio().schedule(interval, [this, target, generation] {
    fire_stream(target, generation);
  });
}

void FakeFrameInjector::fire_stream(const MacAddress& target,
                                    std::uint64_t generation) {
  const auto s = streams_.find(target);
  if (s == streams_.end() || s->second.generation != generation) return;
  // One radio, one frame at a time: defer while our own transmission (or
  // anything else the CCA hears) occupies the channel. Keeps parallel
  // streams from self-colliding, exactly like a real injection queue.
  if (attacker_.radio().medium_busy()) {
    attacker_.radio().schedule(microseconds(60), [this, target, generation] {
      fire_stream(target, generation);
    });
    return;
  }
  inject_one(target);
  schedule_next(target, generation);
}

}  // namespace politewifi::core
