// CSI harvesting via elicited ACKs — the §4.1/§4.3 measurement loop.
//
// Streams fake frames at a victim at a configured rate and records the
// CSI of every ACK that comes back. This is the one-device sensing
// front-end the paper proposes: no cooperation, no association, no
// key material, software on the attacker only.
#pragma once

#include <memory>
#include <vector>

#include "core/ack_sniffer.h"
#include "core/injector.h"
#include "phy/csi.h"

namespace politewifi::core {

/// The sample type moved to phy/csi.h so the sensing layer can consume
/// it without depending on core; the alias keeps existing core-side
/// spellings working.
using CsiSample = phy::CsiSample;

class CsiCollector {
 public:
  /// `attacker` must have capture_csi enabled on its radio.
  CsiCollector(sim::Device& attacker, MacAddress target,
               InjectorConfig config = InjectorConfig{});

  /// Starts streaming fake frames at `rate_pps` (paper uses 150).
  void start(double rate_pps);
  void stop();

  const std::vector<CsiSample>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

  /// Amplitude time series of one subcarrier (paper plots subcarrier 17).
  struct AmplitudePoint {
    double t_s;
    double amplitude;
  };
  std::vector<AmplitudePoint> amplitude_series(int subcarrier) const;

  std::uint64_t frames_injected() const {
    return injector_.stats().frames_injected;
  }

 private:
  sim::Device& attacker_;
  MacAddress target_;
  MonitorHub hub_;
  FakeFrameInjector injector_;
  AckSniffer sniffer_;
  std::vector<CsiSample> samples_;
};

}  // namespace politewifi::core
