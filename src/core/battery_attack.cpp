#include "core/battery_attack.h"

namespace politewifi::core {

BatteryDrainAttack::BatteryDrainAttack(sim::Simulation& sim,
                                       sim::Device& attacker,
                                       sim::Device& victim,
                                       InjectorConfig config)
    : sim_(sim), attacker_(attacker), victim_(victim),
      injector_(attacker, config) {}

BatteryAttackResult BatteryDrainAttack::run(double rate_pps, Duration warmup,
                                            Duration measure) {
  if (rate_pps > 0.0) {
    injector_.start_stream(victim_.address(), rate_pps);
  }
  sim_.run_for(warmup);

  auto& meter = victim_.radio().energy();
  meter.reset(sim_.now());
  const std::uint64_t acks_before = victim_.station().stats().acks_sent;
  const std::uint64_t injected_before = injector_.stats().frames_injected;
  const auto tmpl_before = attacker_.radio().tx_template_cache().stats();
  const std::uint64_t allocs_before =
      sim_.medium().ppdu_pool().stats().allocations;

  sim_.run_for(measure);

  BatteryAttackResult result;
  result.rate_pps = rate_pps;
  result.avg_power_mw = meter.average_mw(sim_.now());
  result.sleep_fraction =
      to_seconds(meter.dwell(sim::RadioState::kSleep)) / to_seconds(measure);
  result.acks_elicited = victim_.station().stats().acks_sent - acks_before;
  result.frames_injected =
      injector_.stats().frames_injected - injected_before;
  const auto& tmpl = attacker_.radio().tx_template_cache().stats();
  result.template_hits = tmpl.hits - tmpl_before.hits;
  result.template_misses = tmpl.misses - tmpl_before.misses;
  result.pool_allocations =
      sim_.medium().ppdu_pool().stats().allocations - allocs_before;

  injector_.stop_all();
  return result;
}

CameraDrainProjection project_drain(const std::string& camera,
                                    double battery_mwh,
                                    double attack_power_mw) {
  return CameraDrainProjection{
      .camera = camera,
      .battery_mwh = battery_mwh,
      .attack_power_mw = attack_power_mw,
      .hours_to_empty =
          attack_power_mw > 0.0 ? battery_mwh / attack_power_mw : 1e9,
  };
}

}  // namespace politewifi::core

namespace politewifi::core {

common::Json BatteryAttackResult::to_json() const {
  common::Json j;
  j["rate_pps"] = rate_pps;
  j["avg_power_mw"] = avg_power_mw;
  j["sleep_fraction"] = sleep_fraction;
  j["acks_elicited"] = acks_elicited;
  j["frames_injected"] = frames_injected;
  j["template_hits"] = template_hits;
  j["template_misses"] = template_misses;
  j["pool_allocations"] = pool_allocations;
  return j;
}

common::Json CameraDrainProjection::to_json() const {
  common::Json j;
  j["camera"] = camera;
  j["battery_mwh"] = battery_mwh;
  j["attack_power_mw"] = attack_power_mw;
  j["hours_to_empty"] = hours_to_empty;
  return j;
}

}  // namespace politewifi::core
