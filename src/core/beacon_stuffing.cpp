#include "core/beacon_stuffing.h"

#include "frames/management.h"

namespace politewifi::core {

namespace {

constexpr std::uint8_t kMagic0 = 0x50;  // 'P'
constexpr std::uint8_t kMagic1 = 0x57;  // 'W'
constexpr std::uint8_t kVendorIe = 221;

}  // namespace

Bytes StuffedChunk::serialize() const {
  Bytes out;
  out.reserve(4 + payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(seq);
  out.push_back(total);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<StuffedChunk> StuffedChunk::parse(
    std::span<const std::uint8_t> ie) {
  if (ie.size() < 4 || ie[0] != kMagic0 || ie[1] != kMagic1) {
    return std::nullopt;
  }
  StuffedChunk c;
  c.seq = ie[2];
  c.total = ie[3];
  if (c.total == 0 || c.seq >= c.total) return std::nullopt;
  c.payload.assign(ie.begin() + 4, ie.end());
  return c;
}

BeaconStuffer::BeaconStuffer(sim::Device& sender, BeaconStufferConfig config)
    : sender_(sender), config_(std::move(config)) {}

void BeaconStuffer::broadcast(const std::string& message) {
  chunks_.clear();
  const std::size_t n_chunks = std::max<std::size_t>(
      1, (message.size() + StuffedChunk::kMaxChunkPayload - 1) /
             StuffedChunk::kMaxChunkPayload);
  for (std::size_t i = 0; i < n_chunks; ++i) {
    StuffedChunk c;
    c.seq = static_cast<std::uint8_t>(i);
    c.total = static_cast<std::uint8_t>(n_chunks);
    const std::size_t begin = i * StuffedChunk::kMaxChunkPayload;
    const std::size_t end =
        std::min(message.size(), begin + StuffedChunk::kMaxChunkPayload);
    c.payload.assign(message.begin() + long(begin), message.begin() + long(end));
    chunks_.push_back(std::move(c));
  }
  next_chunk_ = 0;
  ++generation_;
  send_next();
}

void BeaconStuffer::stop() { ++generation_; }

void BeaconStuffer::send_next() {
  if (chunks_.empty()) return;
  frames::Beacon body;
  body.timestamp_us = static_cast<std::uint64_t>(
      to_microseconds(sender_.radio().now().time_since_epoch()));
  body.beacon_interval = static_cast<std::uint16_t>(
      to_microseconds(config_.beacon_interval) / 1024.0);
  body.elements.set_ssid(config_.ssid);
  body.elements.set_supported_rates({0x8c, 0x12, 0x98, 0x24});
  body.elements.add(kVendorIe, chunks_[next_chunk_].serialize());
  next_chunk_ = (next_chunk_ + 1) % chunks_.size();

  sender_.station().transmit_now(
      frames::make_beacon(sender_.address(), body,
                          sender_.station().next_sequence()),
      config_.rate);
  ++beacons_sent_;

  const std::uint64_t gen = generation_;
  sender_.radio().schedule(config_.beacon_interval, [this, gen] {
    if (gen == generation_) send_next();
  });
}

BeaconStuffingReceiver::BeaconStuffingReceiver(MonitorHub& hub) {
  hub.add_tap([this](const frames::Frame& f, const phy::RxVector&,
                     bool fcs_ok) {
    if (fcs_ok) on_frame(f);
  });
}

void BeaconStuffingReceiver::on_frame(const frames::Frame& frame) {
  if (!frame.fc.is_beacon()) return;
  const auto beacon = frames::Beacon::from_body(frame.body);
  if (!beacon) return;
  for (const auto& ie : beacon->elements.elements()) {
    if (ie.id != kVendorIe) continue;
    const auto chunk = StuffedChunk::parse(ie.value);
    if (!chunk) continue;
    if (pending_.size() != chunk->total) {
      pending_.assign(chunk->total, std::nullopt);
    }
    pending_[chunk->seq] = chunk->payload;
    try_assemble();
  }
}

void BeaconStuffingReceiver::try_assemble() {
  for (const auto& p : pending_) {
    if (!p) return;
  }
  std::string message;
  for (const auto& p : pending_) {
    message.append(p->begin(), p->end());
  }
  pending_.clear();
  messages_.push_back(message);
  if (on_message_) on_message_(message);
}

}  // namespace politewifi::core
