#include "core/scanner.h"

#include <algorithm>

namespace politewifi::core {

DeviceScanner::DeviceScanner(MonitorHub& hub, const mac::MacEnvironment& env,
                             std::vector<MacAddress> ignore)
    : env_(env), ignore_(std::move(ignore)) {
  hub.add_tap([this](const frames::Frame& f, const phy::RxVector& rx,
                     bool fcs_ok) {
    if (fcs_ok) on_frame(f, rx);
  });
}

void DeviceScanner::on_frame(const frames::Frame& frame,
                             const phy::RxVector& rx) {
  // Only transmitter addresses identify devices; ACK/CTS have none.
  if (!frame.has_addr2()) return;
  const MacAddress& ta = frame.addr2;
  if (ta.is_group() || ta.is_zero()) return;
  if (std::find(ignore_.begin(), ignore_.end(), ta) != ignore_.end()) return;

  // Classify from the frame type the device originated.
  bool is_ap = false;
  bool classifiable = false;
  if (frame.fc.is_beacon() ||
      frame.fc.is_subtype(frames::ManagementSubtype::kProbeResponse)) {
    is_ap = true;
    classifiable = true;
  } else if (frame.fc.is_data() && frame.fc.from_ds && !frame.fc.to_ds) {
    is_ap = true;
    classifiable = true;
  } else if (frame.fc.is_subtype(frames::ManagementSubtype::kProbeRequest)) {
    classifiable = true;  // client
  } else if (frame.fc.is_data() && frame.fc.to_ds && !frame.fc.from_ds) {
    classifiable = true;  // client
  } else if (frame.fc.is_management() || frame.fc.is_data()) {
    classifiable = true;  // default to client for other originated frames
  } else {
    return;  // control frames don't establish device class
  }
  (void)classifiable;

  auto [it, inserted] = devices_.try_emplace(ta);
  DiscoveredDevice& dev = it->second;
  if (inserted) {
    dev.mac = ta;
    dev.first_seen = env_.now();
    dev.vendor = scenario::OuiDatabase::instance().vendor_of(ta);
    dev.is_ap = is_ap;
  } else if (is_ap) {
    // AP evidence dominates (an AP also sends client-shaped frames).
    dev.is_ap = true;
  }
  dev.last_seen = env_.now();
  dev.last_rssi_dbm = rx.rssi_dbm;
  ++dev.frames_seen;

  if (inserted && on_discovery_) on_discovery_(dev);
}

std::size_t DeviceScanner::count_aps() const {
  std::size_t n = 0;
  // pw-analyze: allow(unordered-iteration): commutative reduction (a
  // sum) over the device map; no ordering escapes.
  for (const auto& [mac, d] : devices_) n += d.is_ap ? 1 : 0;
  return n;
}

std::size_t DeviceScanner::count_clients() const {
  return devices_.size() - count_aps();
}

}  // namespace politewifi::core
