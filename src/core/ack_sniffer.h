// ACK/CTS observation — the wardriving rig's verification "thread" and
// the sensing pipeline's measurement front-end.
//
// ACK frames carry no transmitter address, only the receiver (our spoofed
// source). Attribution to a victim therefore works the way real rigs do
// it: an ACK that lands within the response window after an injection to
// target T was elicited by T.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/monitor.h"
#include "phy/csi.h"

namespace politewifi::core {

struct AckObservation {
  TimePoint time{};
  MacAddress ra;  // who the ACK was addressed to (the spoofed source)
  double rssi_dbm = -100.0;
  std::optional<phy::CsiSnapshot> csi;
  bool is_cts = false;  // CTS elicited by a fake RTS (§2.2 variant)
  /// The victim attributed by injection bookkeeping; zero when unknown.
  MacAddress attributed_victim{};
};

class AckSniffer {
 public:
  /// Subscribes to `hub`, keeping ACK/CTS frames addressed to `ra_filter`
  /// (typically the spoofed source). `env` supplies timestamps.
  AckSniffer(MonitorHub& hub, const mac::MacEnvironment& env,
             MacAddress ra_filter);

  /// Registers an injection toward `target` (call right after injecting)
  /// so the next matching ACK is attributed to it.
  void note_injection(const MacAddress& target);

  /// Attribution window: ACKs arrive SIFS + airtime after the fake frame
  /// (~50-100 us); anything older than this cannot be ours.
  void set_window(Duration window) { window_ = window; }

  const std::vector<AckObservation>& observations() const { return acks_; }
  std::uint64_t total() const { return acks_.size(); }
  void clear() { acks_.clear(); }

  /// ACKs attributed to a given victim.
  std::size_t count_from(const MacAddress& victim) const;

 private:
  void on_frame(const frames::Frame& frame, const phy::RxVector& rx);

  const mac::MacEnvironment& env_;
  MacAddress ra_filter_;
  Duration window_ = microseconds(500);
  std::vector<AckObservation> acks_;
  struct PendingInjection {
    TimePoint at;
    MacAddress target;
  };
  std::deque<PendingInjection> pending_;
};

}  // namespace politewifi::core
