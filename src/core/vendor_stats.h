// Table 2 aggregation: per-vendor tallies of surveyed devices.
#pragma once

#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.h"
#include "core/scanner.h"

namespace politewifi::core {

struct VendorRow {
  std::string vendor;
  std::size_t devices = 0;

  common::Json to_json() const;
};

struct VendorTable {
  std::vector<VendorRow> rows;  // descending by count
  std::size_t total = 0;
  std::size_t distinct_vendors = 0;

  /// Top `n` rows plus an aggregated "Others" row — the paper's format.
  std::vector<VendorRow> top_with_others(std::size_t n) const;

  common::Json to_json() const;
};

/// Tallies discovered devices of one class (APs or clients) by vendor.
VendorTable tally_vendors(
    const std::unordered_map<MacAddress, DiscoveredDevice>& devices,
    bool aps);

/// Renders the two-column Table 2 layout.
void print_table2(std::ostream& os, const VendorTable& clients,
                  const VendorTable& aps, std::size_t top_n = 20);

}  // namespace politewifi::core
