// Time-of-flight ranging through Polite WiFi ACKs.
//
// The ACK a victim returns is scheduled a *fixed, standard-mandated* time
// (SIFS) after the eliciting frame ends. Everything else in the
// round-trip timeline is known to the attacker:
//
//   RTT = airtime(fake) + d/c + SIFS + airtime(ACK) + d/c
//
// so the only unknowns are the two propagation legs — i.e. the distance.
// This is the observation behind the Wi-Peep line of follow-up work
// ("non-cooperative localization of WiFi devices"), built here directly
// on the injector/sniffer toolkit. Per-measurement error comes from the
// victim's SIFS turnaround jitter (100-300 ns on real silicon, ~15-45 m
// of apparent distance), so a ranger averages many elicited ACKs.
#pragma once

#include <optional>

#include "common/json.h"
#include "core/injector.h"
#include "core/monitor.h"
#include "sim/network.h"

namespace politewifi::core {

struct RangeEstimate {
  double distance_m = 0.0;     // best estimate (fastest-decile by default)
  double mean_m = 0.0;         // plain mean (biased long by jitter)
  double stddev_m = 0.0;       // spread of single measurements
  std::size_t measurements = 0;
  std::size_t lost = 0;        // injections with no usable ACK

  common::Json to_json() const;
};

struct RangerConfig {
  InjectorConfig injector{};
  /// Gap between ranging injections (well above RTT, keeps attribution
  /// trivial).
  Duration probe_interval = milliseconds(2);
  /// Discard RTTs that disagree wildly with the rest (collisions, late
  /// third-party ACKs).
  double outlier_sigma = 3.0;
  /// SIFS turnaround jitter only ever *delays* the ACK, so the shortest
  /// observed RTTs are the truthful ones. When set, the distance is
  /// estimated from the fastest decile instead of the mean (the Wi-Peep
  /// trick); the mean stays available in RangeEstimate::mean_m.
  bool use_minimum_filter = true;
};

class RttRanger {
 public:
  /// `attacker` needs no special capability beyond timestamping its own
  /// TX and the ACK arrivals (every monitor-mode chip can).
  RttRanger(sim::Simulation& sim, sim::Device& attacker,
            RangerConfig config = RangerConfig{});

  /// Ranges `target` with `n` fake-frame probes. Runs the simulation.
  RangeEstimate range(const MacAddress& target, int n = 50);

  /// One raw distance measurement from one injection (nullopt on loss).
  std::optional<double> measure_once(const MacAddress& target);

 private:
  sim::Simulation& sim_;
  sim::Device& attacker_;
  RangerConfig config_;
  MonitorHub hub_;
  FakeFrameInjector injector_;
  // Set by the monitor tap for the probe in flight.
  std::optional<TimePoint> ack_rx_end_;
};

}  // namespace politewifi::core
