// Fake-frame injector — the C++ analogue of the paper's Scapy scripts.
//
// Crafts 802.11 frames whose only truthful field is the destination MAC
// (the victim), with the source spoofed to aa:bb:bb:bb:bb:bb, no payload
// and no encryption, and puts them on the air. Supports one-shot bursts
// (verification sweeps), continuous streams at a configured rate (CSI
// harvesting at 150 fps, battery drain at up to 1000 fps), and the
// RTS flavour from §2.2.
#pragma once

#include <unordered_map>

#include "sim/device.h"

namespace politewifi::core {

struct InjectorConfig {
  /// The spoofed transmitter address (paper's choice by default).
  MacAddress spoofed_source = MacAddress::paper_fake_address();
  /// Injection rate for data frames. ACKs come back at the matching
  /// control-response rate.
  phy::PhyRate rate = phy::kOfdm24;
  /// Send fake RTS (eliciting CTS) instead of null data (eliciting ACK).
  bool use_rts = false;
};

struct InjectorStats {
  std::uint64_t frames_injected = 0;
  std::uint64_t streams_started = 0;
};

class FakeFrameInjector {
 public:
  explicit FakeFrameInjector(sim::Device& attacker,
                             InjectorConfig config = InjectorConfig{});

  const InjectorConfig& config() const { return config_; }
  const InjectorStats& stats() const { return stats_; }

  /// Injects a single fake frame at `target` right now.
  void inject_one(const MacAddress& target);

  /// Classic deauth DoS (Bellardo & Savage '03, cited in §5): spoof a
  /// deauthentication from `spoofed_ap` to `victim`. Foiled by 802.11w
  /// PMF — which is exactly why the paper stresses that Polite WiFi,
  /// living below management frames, is NOT foiled by it.
  void inject_spoofed_deauth(const MacAddress& victim,
                             const MacAddress& spoofed_ap);

  /// Starts (or retargets) a periodic stream at `rate_pps` toward
  /// `target`. Each target has at most one stream.
  void start_stream(const MacAddress& target, double rate_pps);
  void stop_stream(const MacAddress& target);
  void stop_all();

  bool streaming(const MacAddress& target) const {
    return streams_.count(target) > 0;
  }

 private:
  struct Stream {
    double rate_pps = 0.0;
    std::uint64_t generation = 0;
  };

  void schedule_next(const MacAddress& target, std::uint64_t generation);
  void fire_stream(const MacAddress& target, std::uint64_t generation);
  /// The fake frame for `target`, crafted once per target and then only
  /// seq-patched per injection — so a 1000 fps stream feeds the radio's
  /// frame-template cache the same Frame object every time.
  const frames::Frame& craft(const MacAddress& target);

  sim::Device& attacker_;
  InjectorConfig config_;
  InjectorStats stats_;
  std::uint16_t sequence_ = 0;
  std::unordered_map<MacAddress, Stream> streams_;
  std::unordered_map<MacAddress, frames::Frame> crafted_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace politewifi::core
