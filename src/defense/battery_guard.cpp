#include "defense/battery_guard.h"

namespace politewifi::defense {

BatteryGuard::BatteryGuard(sim::Scheduler& scheduler, sim::Device& victim,
                           BatteryGuardConfig config)
    : scheduler_(scheduler), victim_(victim), config_(config) {}

void BatteryGuard::start() {
  running_ = true;
  last_acks_ = victim_.station().stats().acks_sent;
  last_msdus_ =
      victim_.client() != nullptr ? victim_.client()->stats().msdus_received
                                  : 0;
  last_sample_ = scheduler_.now();
  scheduler_.schedule_in(config_.sample_interval, [this] { sample(); });
}

double BatteryGuard::ack_rate() const {
  const double dt = to_seconds(scheduler_.now() - last_sample_);
  if (dt <= 0.0) return 0.0;
  return double(victim_.station().stats().acks_sent - last_acks_) / dt;
}

double BatteryGuard::legit_rate() const {
  const double dt = to_seconds(scheduler_.now() - last_sample_);
  if (dt <= 0.0 || victim_.client() == nullptr) return 0.0;
  return double(victim_.client()->stats().msdus_received - last_msdus_) / dt;
}

void BatteryGuard::sample() {
  if (!running_) return;
  ++stats_.samples;

  const double acks = ack_rate();
  const double legit = legit_rate();
  last_acks_ = victim_.station().stats().acks_sent;
  last_msdus_ =
      victim_.client() != nullptr ? victim_.client()->stats().msdus_received
                                  : 0;
  last_sample_ = scheduler_.now();

  const bool under_attack = acks >= config_.ack_rate_threshold &&
                            legit < config_.legit_rate_threshold;
  if (!stats_.engaged && under_attack) {
    engage();
  } else if (stats_.engaged) {
    // While engaged we sample during listen slots; the attacker's rate
    // per wall second looks lower because we are mostly deaf. Scale the
    // threshold by the listen duty fraction.
    const double duty =
        to_seconds(config_.listen_slot) /
        to_seconds(config_.listen_slot + config_.sleep_slot);
    if (acks < config_.ack_rate_threshold * duty) {
      if (++calm_streak_ >= config_.calm_samples_to_disengage) disengage();
    } else {
      calm_streak_ = 0;
    }
  }

  scheduler_.schedule_in(config_.sample_interval, [this] { sample(); });
}

void BatteryGuard::engage() {
  if (victim_.client() != nullptr) victim_.client()->set_forced_doze(true);
  stats_.engaged = true;
  ++stats_.engagements;
  if (stats_.engagements == 1) stats_.first_engaged_at = scheduler_.now();
  calm_streak_ = 0;
  ++duty_generation_;
  duty_cycle();
}

void BatteryGuard::disengage() {
  if (victim_.client() != nullptr) victim_.client()->set_forced_doze(false);
  stats_.engaged = false;
  ++duty_generation_;  // stops the duty loop
  victim_.radio().set_sleeping(false);
  victim_.station().set_dozing(false);
}

void BatteryGuard::duty_cycle() {
  if (!stats_.engaged || !running_) return;
  const std::uint64_t gen = duty_generation_;

  // Sleep slot: deaf, cheap, and — crucially — silent: no ACKs.
  victim_.radio().set_sleeping(true);
  victim_.station().set_dozing(true);

  scheduler_.schedule_in(config_.sleep_slot, [this, gen] {
    if (gen != duty_generation_) return;
    // Listen slot: reachable for a moment (and lets sample() see whether
    // the attack has stopped).
    victim_.radio().set_sleeping(false);
    victim_.station().set_dozing(false);
    scheduler_.schedule_in(config_.listen_slot, [this, gen] {
      if (gen != duty_generation_) return;
      duty_cycle();
    });
  });
}

}  // namespace politewifi::defense
