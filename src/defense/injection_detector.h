// Detection of Polite WiFi abuse — the countermeasure side the paper
// leaves as "an interesting topic for future research".
//
// The ACK itself cannot be suppressed (§2.2), but the *attack traffic*
// is loud: a CSI-harvesting attacker sends 100-1000 identical unicast
// frames per second from an address that never associates and whose
// frames never decrypt. A monitor (on the AP, or a dedicated guard
// node) can flag that pattern in well under a second.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/mac_address.h"
#include "frames/frame.h"

namespace politewifi::defense {

enum class ThreatKind : std::uint8_t {
  kSensingPoll,   // sustained 50..500 fps at one victim (CSI harvesting)
  kBatteryDrain,  // > 500 fps at one victim
  kProbeSweep,    // low-rate fakes fanned across many victims (wardriving)
  kDeauthFlood,   // spoofed deauthentication bursts
};

const char* threat_kind_name(ThreatKind kind);

struct ThreatAlert {
  ThreatKind kind;
  MacAddress attacker;   // the (likely spoofed) source address
  MacAddress victim;     // zero for multi-victim sweeps
  double rate_pps = 0.0; // observed frame rate
  TimePoint raised_at{};
  std::size_t victims = 1;  // distinct targets (sweeps)

  common::Json to_json() const;
};

struct InjectionDetectorConfig {
  /// Sliding analysis window.
  Duration window = seconds(1);
  /// Unicast frames/s from one unassociated sender to one victim that
  /// counts as a sensing poll.
  double sensing_rate_pps = 30.0;
  /// Threshold separating sensing polls from drain attacks.
  double drain_rate_pps = 500.0;
  /// Distinct victims within a window that marks a probe sweep.
  std::size_t sweep_victims = 8;
  /// Deauths per window from one sender that marks a flood.
  std::size_t deauth_flood_count = 5;
  /// Re-alert interval per (attacker, kind).
  Duration realert_interval = seconds(10);
};

class InjectionDetector {
 public:
  using AlertCallback = std::function<void(const ThreatAlert&)>;

  explicit InjectionDetector(InjectionDetectorConfig config);
  InjectionDetector() : InjectionDetector(InjectionDetectorConfig{}) {}

  void set_on_alert(AlertCallback cb) { on_alert_ = std::move(cb); }

  /// Marks a sender as a legitimate network member (associated stations
  /// are exempt from fake-frame heuristics).
  void mark_trusted(const MacAddress& sender) { trusted_.insert(sender); }
  void unmark_trusted(const MacAddress& sender) { trusted_.erase(sender); }

  /// Feed every sniffed FCS-valid frame with its arrival time. Returns
  /// the alerts raised by this frame (also delivered via callback).
  std::vector<ThreatAlert> observe(const frames::Frame& frame, TimePoint now);

  const std::vector<ThreatAlert>& alerts() const { return alerts_; }

 private:
  struct SenderState {
    std::vector<std::pair<TimePoint, MacAddress>> recent;  // (time, victim)
    std::vector<TimePoint> recent_deauths;
    std::unordered_map<int, TimePoint> last_alert;  // by ThreatKind
  };

  void prune(SenderState& state, TimePoint now) const;
  bool should_alert(SenderState& state, ThreatKind kind, TimePoint now) const;

  InjectionDetectorConfig config_;
  AlertCallback on_alert_;
  std::unordered_map<MacAddress, SenderState> senders_;
  std::unordered_set<MacAddress> trusted_;
  std::vector<ThreatAlert> alerts_;
};

}  // namespace politewifi::defense
