// Device-side mitigation of the battery-drain attack.
//
// A victim cannot stop ACKing (§2.2) — but it CAN notice that it is
// ACKing far more than its real traffic justifies and choose to trade
// reachability for battery: force the radio into a coarse duty cycle
// (mostly asleep, brief listen slots) until the storm subsides. Frames
// that arrive while asleep are never received, hence never ACKed, hence
// cost nothing.
//
// This is the only mitigation class the physics allows, and it has a
// price the guard makes explicit: during an engagement the device is
// effectively offline between listen slots.
#pragma once

#include "sim/device.h"

namespace politewifi::defense {

struct BatteryGuardConfig {
  /// Sampling cadence for the ACK-rate estimator.
  Duration sample_interval = milliseconds(500);
  /// ACKs/s above this with (almost) no real traffic = under attack.
  double ack_rate_threshold = 25.0;
  /// Real decrypted MSDUs/s below this counts as "no real traffic".
  double legit_rate_threshold = 2.0;
  /// Duty cycle while engaged.
  Duration sleep_slot = milliseconds(450);
  Duration listen_slot = milliseconds(50);
  /// Consecutive calm samples (during listen slots) before disengaging.
  int calm_samples_to_disengage = 4;
};

struct BatteryGuardStats {
  std::uint64_t engagements = 0;
  std::uint64_t samples = 0;
  TimePoint first_engaged_at{};
  bool engaged = false;
};

class BatteryGuard {
 public:
  /// Guards `victim` (a client device). Call start() once associated.
  BatteryGuard(sim::Scheduler& scheduler, sim::Device& victim,
               BatteryGuardConfig config = BatteryGuardConfig{});

  void start();
  void stop() { running_ = false; }

  const BatteryGuardStats& stats() const { return stats_; }
  bool engaged() const { return stats_.engaged; }

 private:
  void sample();
  void engage();
  void disengage();
  void duty_cycle();
  double ack_rate() const;
  double legit_rate() const;

  sim::Scheduler& scheduler_;
  sim::Device& victim_;
  BatteryGuardConfig config_;
  BatteryGuardStats stats_;
  bool running_ = false;
  int calm_streak_ = 0;
  std::uint64_t last_acks_ = 0;
  std::uint64_t last_msdus_ = 0;
  TimePoint last_sample_{};
  std::uint64_t duty_generation_ = 0;
};

}  // namespace politewifi::defense
