#include "defense/injection_detector.h"

#include <algorithm>
#include <set>

namespace politewifi::defense {

const char* threat_kind_name(ThreatKind kind) {
  switch (kind) {
    case ThreatKind::kSensingPoll: return "sensing-poll";
    case ThreatKind::kBatteryDrain: return "battery-drain";
    case ThreatKind::kProbeSweep: return "probe-sweep";
    case ThreatKind::kDeauthFlood: return "deauth-flood";
  }
  return "?";
}

InjectionDetector::InjectionDetector(InjectionDetectorConfig config)
    : config_(config) {}

void InjectionDetector::prune(SenderState& state, TimePoint now) const {
  const TimePoint cutoff = now - config_.window;
  std::erase_if(state.recent,
                [cutoff](const auto& e) { return e.first < cutoff; });
  std::erase_if(state.recent_deauths,
                [cutoff](TimePoint t) { return t < cutoff; });
}

bool InjectionDetector::should_alert(SenderState& state, ThreatKind kind,
                                     TimePoint now) const {
  const auto it = state.last_alert.find(int(kind));
  if (it != state.last_alert.end() &&
      now - it->second < config_.realert_interval) {
    return false;
  }
  state.last_alert[int(kind)] = now;
  return true;
}

std::vector<ThreatAlert> InjectionDetector::observe(const frames::Frame& frame,
                                                    TimePoint now) {
  std::vector<ThreatAlert> raised;
  if (!frame.has_addr2()) return raised;  // ACK/CTS carry no sender
  const MacAddress& sender = frame.addr2;
  if (trusted_.count(sender) > 0) return raised;
  if (frame.addr1.is_group()) return raised;  // broadcast isn't pollable

  SenderState& state = senders_[sender];
  prune(state, now);

  if (frame.fc.is_deauth()) {
    state.recent_deauths.push_back(now);
    if (state.recent_deauths.size() >= config_.deauth_flood_count &&
        should_alert(state, ThreatKind::kDeauthFlood, now)) {
      raised.push_back(ThreatAlert{.kind = ThreatKind::kDeauthFlood,
                                   .attacker = sender,
                                   .victim = frame.addr1,
                                   .rate_pps = double(state.recent_deauths.size()) /
                                               to_seconds(config_.window),
                                   .raised_at = now});
    }
  }

  // Fake-frame heuristics: unencrypted data (incl. null functions) or
  // RTS from an untrusted sender.
  const bool pollable =
      (frame.fc.is_data() && !frame.fc.protected_frame) || frame.fc.is_rts();
  if (pollable) {
    state.recent.emplace_back(now, frame.addr1);

    // Per-victim rate.
    std::size_t to_this_victim = 0;
    std::set<MacAddress> victims;
    for (const auto& [t, v] : state.recent) {
      victims.insert(v);
      if (v == frame.addr1) ++to_this_victim;
    }
    const double rate =
        double(to_this_victim) / to_seconds(config_.window);

    if (rate >= config_.drain_rate_pps) {
      if (should_alert(state, ThreatKind::kBatteryDrain, now)) {
        raised.push_back(ThreatAlert{.kind = ThreatKind::kBatteryDrain,
                                     .attacker = sender,
                                     .victim = frame.addr1,
                                     .rate_pps = rate,
                                     .raised_at = now});
      }
    } else if (rate >= config_.sensing_rate_pps) {
      if (should_alert(state, ThreatKind::kSensingPoll, now)) {
        raised.push_back(ThreatAlert{.kind = ThreatKind::kSensingPoll,
                                     .attacker = sender,
                                     .victim = frame.addr1,
                                     .rate_pps = rate,
                                     .raised_at = now});
      }
    }

    if (victims.size() >= config_.sweep_victims &&
        should_alert(state, ThreatKind::kProbeSweep, now)) {
      raised.push_back(ThreatAlert{.kind = ThreatKind::kProbeSweep,
                                   .attacker = sender,
                                   .victim = MacAddress{},
                                   .rate_pps = double(state.recent.size()) /
                                               to_seconds(config_.window),
                                   .raised_at = now,
                                   .victims = victims.size()});
    }
  }

  for (const auto& alert : raised) {
    alerts_.push_back(alert);
    if (on_alert_) on_alert_(alert);
  }
  return raised;
}

}  // namespace politewifi::defense

namespace politewifi::defense {

common::Json ThreatAlert::to_json() const {
  common::Json j;
  j["kind"] = threat_kind_name(kind);
  j["attacker"] = attacker.to_string();
  j["victim"] = victim.to_string();
  j["rate_pps"] = rate_pps;
  j["raised_at_s"] = to_seconds(raised_at - kSimStart);
  j["victims"] = victims;
  return j;
}

}  // namespace politewifi::defense
