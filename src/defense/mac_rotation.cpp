#include "defense/mac_rotation.h"

namespace politewifi::defense {

MacRotation::MacRotation(sim::Scheduler& scheduler, sim::Device& device,
                         MacRotationConfig config)
    : scheduler_(scheduler),
      device_(device),
      config_(config),
      rng_(config.seed) {}

void MacRotation::start() {
  running_ = true;
  scheduler_.schedule_in(config_.interval, [this] { rotate(); });
}

MacAddress MacRotation::next_address() {
  const MacAddress old = device_.station().address();
  std::array<std::uint8_t, 6> octets;
  for (auto& o : octets) o = std::uint8_t(rng_.uniform_int(0, 255));
  if (config_.keep_oui) {
    octets[0] = old[0];
    octets[1] = old[1];
    octets[2] = old[2];
  } else {
    // Locally administered, unicast: the standard randomized-MAC form.
    octets[0] = std::uint8_t((octets[0] | 0x02) & ~0x01);
  }
  return MacAddress{octets};
}

void MacRotation::rotate() {
  if (!running_) return;
  // Deployed rotation policies only rotate while unassociated: changing
  // the address under an established link would break it.
  const bool associated =
      device_.client() != nullptr && device_.client()->established();
  if (associated) {
    ++stats_.skipped_while_associated;
  } else {
    device_.station().set_address(next_address());
    ++stats_.rotations;
  }
  scheduler_.schedule_in(config_.interval, [this] { rotate(); });
}

}  // namespace politewifi::defense
