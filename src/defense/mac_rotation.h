// MAC address rotation — the privacy countermeasure that *does* bite.
//
// Polite WiFi's sensing and tracking attacks address the victim by MAC.
// The ACK cannot be withheld (§2.2) — but the address can be a moving
// target: while unassociated, a device can rotate through randomized
// locally-administered MACs (as iOS/Android do for probe requests). Every
// rotation orphans the attacker's target list: fake frames to the old
// address fall on deaf ears until the victim is re-discovered, cutting
// the attacker's usable CSI duty cycle.
//
// The defense is not free — rotation breaks continuity for *legitimate*
// long-lived associations too, which is exactly why deployed devices only
// rotate while unassociated. The guard honours that.
#pragma once

#include "sim/device.h"

namespace politewifi::defense {

struct MacRotationConfig {
  /// Rotation period.
  Duration interval = seconds(30);
  /// Keep the vendor OUI (some devices do, most randomize fully).
  bool keep_oui = false;
  std::uint64_t seed = 0xDECAF;
};

struct MacRotationStats {
  std::uint64_t rotations = 0;
  std::uint64_t skipped_while_associated = 0;
};

class MacRotation {
 public:
  MacRotation(sim::Scheduler& scheduler, sim::Device& device,
              MacRotationConfig config = MacRotationConfig{});

  void start();
  void stop() { running_ = false; }

  const MacRotationStats& stats() const { return stats_; }
  const MacAddress& current_address() const {
    return device_.station().address();
  }

 private:
  void rotate();
  MacAddress next_address();

  sim::Scheduler& scheduler_;
  sim::Device& device_;
  MacRotationConfig config_;
  MacRotationStats stats_;
  Rng rng_;
  bool running_ = false;
};

}  // namespace politewifi::defense
