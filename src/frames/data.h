// Data-frame helpers: plain/QoS data and the CCMP header wrapper.
//
// Inside a WPA2 BSS the MSDU is wrapped as
//   [CCMP header (8)] [encrypted MSDU] [MIC (8)]
// and the Protected bit is set in Frame Control. The crypto itself lives
// in pw_crypto; here we only define the on-air layout of the CCMP header
// so frames serialize byte-exactly.
#pragma once

#include <cstdint>
#include <optional>

#include "common/mac_address.h"
#include "frames/frame.h"

namespace politewifi::frames {

/// CCMP header (IEEE 802.11-2016 §12.5.3.2): 48-bit packet number split
/// around the key-ID octet. ExtIV is always set for CCMP.
struct CcmpHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::size_t kMicSize = 8;

  std::uint64_t packet_number = 0;  // 48-bit PN, replay counter
  std::uint8_t key_id = 0;          // 0..3

  void serialize(ByteWriter& w) const;
  static std::optional<CcmpHeader> deserialize(ByteReader& r);

  friend bool operator==(const CcmpHeader&, const CcmpHeader&) = default;
};

/// A data frame from `sa` to `da` via the AP (ToDS), carrying `msdu`.
/// The body is the raw MSDU; call pw_crypto's protect() to encrypt in
/// place for WPA2 links.
Frame make_data_to_ds(const MacAddress& bssid, const MacAddress& sa,
                      const MacAddress& da, Bytes msdu,  // pw-lint: allow(by-value-bytes)
                      std::uint16_t sequence);

/// A data frame delivered by the AP (FromDS) to station `da`.
Frame make_data_from_ds(const MacAddress& bssid, const MacAddress& sa,
                        const MacAddress& da, Bytes msdu,  // pw-lint: allow(by-value-bytes)
                        std::uint16_t sequence);

/// QoS data variant (adds the 2-octet QoS Control field, TID in low bits).
Frame make_qos_data_to_ds(const MacAddress& bssid, const MacAddress& sa,
                          const MacAddress& da, Bytes msdu,  // pw-lint: allow(by-value-bytes)
                          std::uint16_t sequence, std::uint8_t tid);

/// PS-Poll control frame: a dozing station asks the AP for buffered
/// traffic. The AID is carried in the Duration/ID field with the two top
/// bits set (§9.2.4.2).
Frame make_ps_poll(const MacAddress& bssid, const MacAddress& ta,
                   std::uint16_t aid);

/// Extracts the AID from a PS-Poll frame's Duration/ID field.
std::uint16_t ps_poll_aid(const Frame& frame);

}  // namespace politewifi::frames
