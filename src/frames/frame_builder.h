// Scapy-style fluent frame builder.
//
// The paper's attacker crafts frames with arbitrary header contents using
// Scapy; FrameBuilder is the C++ equivalent. Nothing is validated — the
// whole point is that the *receiver* doesn't validate either.
#pragma once

#include "frames/frame.h"

namespace politewifi::frames {

class FrameBuilder {
 public:
  FrameBuilder() = default;

  FrameBuilder& type(FrameType t) {
    frame_.fc.type = t;
    return *this;
  }
  FrameBuilder& subtype(std::uint8_t raw) {
    frame_.fc.subtype = raw & 0x0F;
    return *this;
  }
  FrameBuilder& management(ManagementSubtype s) {
    frame_.fc = FrameControl::management(s);
    return *this;
  }
  FrameBuilder& control(ControlSubtype s) {
    frame_.fc = FrameControl::control(s);
    return *this;
  }
  FrameBuilder& data(DataSubtype s) {
    frame_.fc = FrameControl::data(s);
    return *this;
  }

  FrameBuilder& to_ds(bool v = true) {
    frame_.fc.to_ds = v;
    return *this;
  }
  FrameBuilder& from_ds(bool v = true) {
    frame_.fc.from_ds = v;
    return *this;
  }
  FrameBuilder& retry(bool v = true) {
    frame_.fc.retry = v;
    return *this;
  }
  FrameBuilder& power_management(bool v = true) {
    frame_.fc.power_management = v;
    return *this;
  }
  FrameBuilder& protected_frame(bool v = true) {
    frame_.fc.protected_frame = v;
    return *this;
  }

  FrameBuilder& duration(std::uint16_t us) {
    frame_.duration_id = us;
    return *this;
  }
  FrameBuilder& addr1(const MacAddress& m) {
    frame_.addr1 = m;
    return *this;
  }
  FrameBuilder& addr2(const MacAddress& m) {
    frame_.addr2 = m;
    return *this;
  }
  FrameBuilder& addr3(const MacAddress& m) {
    frame_.addr3 = m;
    return *this;
  }
  FrameBuilder& addr4(const MacAddress& m) {
    frame_.addr4 = m;
    return *this;
  }
  FrameBuilder& sequence(std::uint16_t sn, std::uint8_t frag = 0) {
    frame_.seq = {sn, frag};
    return *this;
  }
  FrameBuilder& qos(std::uint16_t qc) {
    frame_.qos_control = qc;
    return *this;
  }
  FrameBuilder& body(Bytes b) {  // pw-lint: allow(by-value-bytes)
    frame_.body = std::move(b);
    return *this;
  }

  Frame build() const { return frame_; }

 private:
  Frame frame_;
};

}  // namespace politewifi::frames
