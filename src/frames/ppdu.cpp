#include "frames/ppdu.h"

#include <algorithm>

#include "common/annotations.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace politewifi::frames {

const Bytes& PpduRef::octets() const {
  PW_DCHECK(buf_ != nullptr, "octets() on an empty PpduRef");
  return buf_->octets;
}

Bytes& PpduRef::mutable_octets() {
  PW_DCHECK(buf_ != nullptr, "mutable_octets() on an empty PpduRef");
  PW_DCHECK(buf_->refs == 1,
            "mutating a shared PPDU buffer (%u refs): copy-on-write first",
            buf_->refs);
  return buf_->octets;
}

PW_HOT void PpduRef::release() {
  if (buf_ == nullptr) return;
  PW_DCHECK(buf_->refs > 0, "PpduRef over-release");
  if (--buf_->refs == 0) {
    if (buf_->pool != nullptr) {
      buf_->pool->release_buffer(buf_);
    } else {
      // pw-analyze: allow(hot-new): orphan/freestanding buffers only —
      // pooled buffers return to the free list above; the legacy
      // allocate-per-frame path is the sanctioned off-switch.
      delete buf_;
    }
  }
  buf_ = nullptr;
}

PpduRef PpduRef::copy_of(std::span<const std::uint8_t> octets) {
  auto* buf = new Buffer;
  buf->octets.assign(octets.begin(), octets.end());
  return PpduRef(buf);
}

PpduPool::~PpduPool() {
  // Scheduled receptions may still hold refs when a simulation is torn
  // down mid-flight (the scheduler usually outlives the medium): orphan
  // live buffers so their final release deletes instead of touching a
  // dead pool.
  for (PpduRef::Buffer* buf : all_) {
    if (buf->refs == 0) {
      delete buf;
    } else {
      buf->pool = nullptr;
    }
  }
}

PW_HOT PpduRef PpduPool::acquire() {
  ++stats_.acquires;
  if (pooling_ && !free_.empty()) {
    ++stats_.reuses;
    PW_COUNT(kPpduPoolReuses);
    PpduRef::Buffer* buf = free_.back();
    free_.pop_back();
    buf->on_free_list = false;
    buf->octets.clear();  // capacity retained
    return PpduRef(buf);
  }
  ++stats_.allocations;
  PW_COUNT(kPpduPoolAllocations);
  // pw-analyze: allow(hot-new): pool growth on a cold miss only; steady
  // state recycles via free_, witnessed by sim.ppdu_pool.allocations and
  // the bench-regression allocation gate.
  auto* buf = new PpduRef::Buffer;
  if (pooling_) {
    buf->pool = this;
    all_.push_back(buf);
  }
  // !pooling_: freestanding buffer, deleted on last release — the
  // allocate-per-frame behaviour of the legacy pipeline.
  return PpduRef(buf);
}

void PpduPool::release_buffer(PpduRef::Buffer* buf) {
  PW_DCHECK(!buf->on_free_list, "PPDU buffer released twice");
  buf->on_free_list = true;
  free_.push_back(buf);
}

void PpduPool::audit() const {
  PW_CHECK(free_.size() <= all_.size(),
           "PPDU pool free list (%zu) larger than the pool (%zu)",
           free_.size(), all_.size());
  std::size_t flagged = 0;
  for (const PpduRef::Buffer* buf : all_) {
    PW_CHECK(buf->pool == this, "pooled PPDU buffer points at another pool");
    PW_CHECK(buf->on_free_list == (buf->refs == 0),
             "PPDU buffer with %u refs %s the free list", buf->refs,
             buf->on_free_list ? "on" : "missing from");
    flagged += buf->on_free_list ? 1 : 0;
  }
  // Every free-list entry must be a flagged pool member; with the counts
  // equal and flags consistent, a duplicated or foreign entry cannot hide.
  PW_CHECK_EQ(flagged, free_.size());
  for (const PpduRef::Buffer* buf : free_) {
    PW_CHECK(buf->on_free_list && buf->refs == 0,
             "free-list entry with live references");
    PW_CHECK(std::count(all_.begin(), all_.end(), buf) == 1,
             "free-list entry not exactly once in the pool");
  }
}

}  // namespace politewifi::frames
