#include "frames/frame_control.h"

namespace politewifi::frames {

std::uint16_t FrameControl::pack() const {
  std::uint16_t v = 0;
  v |= static_cast<std::uint16_t>(protocol_version & 0x03);
  v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(type) & 0x03) << 2;
  v |= static_cast<std::uint16_t>(subtype & 0x0F) << 4;
  if (to_ds) v |= 1u << 8;
  if (from_ds) v |= 1u << 9;
  if (more_fragments) v |= 1u << 10;
  if (retry) v |= 1u << 11;
  if (power_management) v |= 1u << 12;
  if (more_data) v |= 1u << 13;
  if (protected_frame) v |= 1u << 14;
  if (order) v |= 1u << 15;
  return v;
}

FrameControl FrameControl::unpack(std::uint16_t raw) {
  FrameControl fc;
  fc.protocol_version = raw & 0x03;
  fc.type = static_cast<FrameType>((raw >> 2) & 0x03);
  fc.subtype = (raw >> 4) & 0x0F;
  fc.to_ds = raw & (1u << 8);
  fc.from_ds = raw & (1u << 9);
  fc.more_fragments = raw & (1u << 10);
  fc.retry = raw & (1u << 11);
  fc.power_management = raw & (1u << 12);
  fc.more_data = raw & (1u << 13);
  fc.protected_frame = raw & (1u << 14);
  fc.order = raw & (1u << 15);
  return fc;
}

std::string FrameControl::subtype_name() const {
  switch (type) {
    case FrameType::kManagement:
      switch (static_cast<ManagementSubtype>(subtype)) {
        case ManagementSubtype::kAssocRequest: return "Association Request";
        case ManagementSubtype::kAssocResponse: return "Association Response";
        case ManagementSubtype::kProbeRequest: return "Probe Request";
        case ManagementSubtype::kProbeResponse: return "Probe Response";
        case ManagementSubtype::kBeacon: return "Beacon frame";
        case ManagementSubtype::kDisassociation: return "Disassociation";
        case ManagementSubtype::kAuthentication: return "Authentication";
        case ManagementSubtype::kDeauthentication: return "Deauthentication";
        case ManagementSubtype::kAction: return "Action";
      }
      return "Management (reserved subtype)";
    case FrameType::kControl:
      switch (static_cast<ControlSubtype>(subtype)) {
        case ControlSubtype::kBlockAckRequest: return "Block Ack Request";
        case ControlSubtype::kBlockAck: return "Block Ack";
        case ControlSubtype::kPsPoll: return "PS-Poll";
        case ControlSubtype::kRts: return "Request-to-send";
        case ControlSubtype::kCts: return "Clear-to-send";
        case ControlSubtype::kAck: return "Acknowledgement";
        case ControlSubtype::kCfEnd: return "CF-End";
      }
      return "Control (reserved subtype)";
    case FrameType::kData:
      switch (static_cast<DataSubtype>(subtype)) {
        case DataSubtype::kData: return "Data";
        case DataSubtype::kNull: return "Null function (No data)";
        case DataSubtype::kQosData: return "QoS Data";
        case DataSubtype::kQosNull: return "QoS Null function (No data)";
      }
      return "Data (other subtype)";
    case FrameType::kExtension:
      return "Extension";
  }
  return "?";
}

}  // namespace politewifi::frames
