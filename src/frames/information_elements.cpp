#include "frames/information_elements.h"

#include <algorithm>

namespace politewifi::frames {

const InformationElement* ElementList::find(ElementId id) const {
  const auto raw = static_cast<std::uint8_t>(id);
  for (const auto& e : elements_) {
    if (e.id == raw) return &e;
  }
  return nullptr;
}

void ElementList::set_ssid(const std::string& ssid) {
  Bytes v(ssid.begin(), ssid.end());
  add(ElementId::kSsid, std::move(v));
}

std::optional<std::string> ElementList::ssid() const {
  const auto* e = find(ElementId::kSsid);
  if (!e) return std::nullopt;
  return std::string(e->value.begin(), e->value.end());
}

void ElementList::set_supported_rates(const std::vector<std::uint8_t>& rates) {
  add(ElementId::kSupportedRates, Bytes(rates.begin(), rates.end()));
}

std::vector<std::uint8_t> ElementList::supported_rates() const {
  const auto* e = find(ElementId::kSupportedRates);
  if (!e) return {};
  return {e->value.begin(), e->value.end()};
}

void ElementList::set_channel(std::uint8_t channel) {
  add(ElementId::kDsParameterSet, Bytes{channel});
}

std::optional<std::uint8_t> ElementList::channel() const {
  const auto* e = find(ElementId::kDsParameterSet);
  if (!e || e->value.size() != 1) return std::nullopt;
  return e->value[0];
}

void ElementList::set_tim(const Tim& tim) {
  // Partial virtual bitmap: we encode AIDs 1..2007 in full-octet granularity
  // starting at offset 0 for simplicity (bitmap control = 0).
  std::uint16_t max_aid = 0;
  for (auto aid : tim.buffered_aids) max_aid = std::max(max_aid, aid);
  Bytes bitmap((max_aid / 8) + 1, 0);
  for (auto aid : tim.buffered_aids) bitmap[aid / 8] |= 1u << (aid % 8);

  Bytes v;
  v.push_back(tim.dtim_count);
  v.push_back(tim.dtim_period);
  v.push_back(0);  // bitmap control
  v.insert(v.end(), bitmap.begin(), bitmap.end());
  add(ElementId::kTim, std::move(v));
}

std::optional<ElementList::Tim> ElementList::tim() const {
  const auto* e = find(ElementId::kTim);
  if (!e || e->value.size() < 4) return std::nullopt;
  Tim t;
  t.dtim_count = e->value[0];
  t.dtim_period = e->value[1];
  // e->value[2] is bitmap control (always 0 here).
  for (std::size_t i = 3; i < e->value.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      if (e->value[i] & (1u << bit)) {
        t.buffered_aids.push_back(
            static_cast<std::uint16_t>((i - 3) * 8 + bit));
      }
    }
  }
  return t;
}

void ElementList::set_rsn_wpa2_psk() {
  // RSNE: version 1, group cipher CCMP, 1 pairwise cipher CCMP,
  // 1 AKM suite PSK, RSN capabilities 0.
  static constexpr std::uint8_t kRsne[] = {
      0x01, 0x00,                    // version
      0x00, 0x0f, 0xac, 0x04,        // group cipher: CCMP-128
      0x01, 0x00,                    // pairwise count
      0x00, 0x0f, 0xac, 0x04,        // pairwise: CCMP-128
      0x01, 0x00,                    // AKM count
      0x00, 0x0f, 0xac, 0x02,        // AKM: PSK
      0x00, 0x00,                    // capabilities
  };
  add(ElementId::kRsn, Bytes(std::begin(kRsne), std::end(kRsne)));
}

void ElementList::serialize(ByteWriter& w) const {
  for (const auto& e : elements_) {
    w.u8(e.id);
    w.u8(static_cast<std::uint8_t>(e.value.size()));
    w.bytes(e.value);
  }
}

ElementList ElementList::deserialize(ByteReader& r) {
  ElementList list;
  while (r.remaining() >= 2) {
    const std::uint8_t id = r.u8();
    const std::uint8_t len = r.u8();
    auto value = r.bytes(len);  // throws BufferUnderflow if truncated
    list.add(id, Bytes(value.begin(), value.end()));
  }
  return list;
}

}  // namespace politewifi::frames
