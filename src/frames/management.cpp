#include "frames/management.h"

namespace politewifi::frames {

namespace {

template <typename T>
std::optional<T> parse_guard(std::span<const std::uint8_t> body,
                             T (*parser)(ByteReader&)) {
  try {
    ByteReader r(body);
    return parser(r);
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace

// --- Beacon ------------------------------------------------------------------

Bytes Beacon::to_body() const {
  ByteWriter w;
  w.u64le(timestamp_us);
  w.u16le(beacon_interval);
  w.u16le(capability.pack());
  elements.serialize(w);
  return w.take();
}

std::optional<Beacon> Beacon::from_body(std::span<const std::uint8_t> body) {
  return parse_guard<Beacon>(body, +[](ByteReader& r) {
    Beacon b;
    b.timestamp_us = r.u64le();
    b.beacon_interval = r.u16le();
    b.capability = CapabilityInfo::unpack(r.u16le());
    b.elements = ElementList::deserialize(r);
    return b;
  });
}

// --- Deauthentication ---------------------------------------------------------

Bytes Deauthentication::to_body() const {
  ByteWriter w;
  w.u16le(static_cast<std::uint16_t>(reason));
  return w.take();
}

std::optional<Deauthentication> Deauthentication::from_body(
    std::span<const std::uint8_t> body) {
  return parse_guard<Deauthentication>(body, +[](ByteReader& r) {
    Deauthentication d;
    d.reason = static_cast<ReasonCode>(r.u16le());
    return d;
  });
}

// --- Authentication ------------------------------------------------------------

Bytes Authentication::to_body() const {
  ByteWriter w;
  w.u16le(algorithm);
  w.u16le(sequence);
  w.u16le(status);
  return w.take();
}

std::optional<Authentication> Authentication::from_body(
    std::span<const std::uint8_t> body) {
  return parse_guard<Authentication>(body, +[](ByteReader& r) {
    Authentication a;
    a.algorithm = r.u16le();
    a.sequence = r.u16le();
    a.status = r.u16le();
    return a;
  });
}

// --- Association ---------------------------------------------------------------

Bytes AssociationRequest::to_body() const {
  ByteWriter w;
  w.u16le(capability.pack());
  w.u16le(listen_interval);
  elements.serialize(w);
  return w.take();
}

std::optional<AssociationRequest> AssociationRequest::from_body(
    std::span<const std::uint8_t> body) {
  return parse_guard<AssociationRequest>(body, +[](ByteReader& r) {
    AssociationRequest a;
    a.capability = CapabilityInfo::unpack(r.u16le());
    a.listen_interval = r.u16le();
    a.elements = ElementList::deserialize(r);
    return a;
  });
}

Bytes AssociationResponse::to_body() const {
  ByteWriter w;
  w.u16le(capability.pack());
  w.u16le(status);
  w.u16le(aid);
  elements.serialize(w);
  return w.take();
}

std::optional<AssociationResponse> AssociationResponse::from_body(
    std::span<const std::uint8_t> body) {
  return parse_guard<AssociationResponse>(body, +[](ByteReader& r) {
    AssociationResponse a;
    a.capability = CapabilityInfo::unpack(r.u16le());
    a.status = r.u16le();
    a.aid = r.u16le();
    a.elements = ElementList::deserialize(r);
    return a;
  });
}

// --- Probe request ---------------------------------------------------------------

Bytes ProbeRequest::to_body() const {
  ByteWriter w;
  elements.serialize(w);
  return w.take();
}

std::optional<ProbeRequest> ProbeRequest::from_body(
    std::span<const std::uint8_t> body) {
  return parse_guard<ProbeRequest>(body, +[](ByteReader& r) {
    ProbeRequest p;
    p.elements = ElementList::deserialize(r);
    return p;
  });
}

// --- Frame factories ---------------------------------------------------------------

namespace {

Frame make_management(ManagementSubtype subtype, const MacAddress& ra,
                      const MacAddress& ta, const MacAddress& bssid,
                      Bytes body, std::uint16_t sequence) {  // pw-lint: allow(by-value-bytes)
  Frame f;
  f.fc = FrameControl::management(subtype);
  f.addr1 = ra;
  f.addr2 = ta;
  f.addr3 = bssid;
  f.seq.sequence = sequence;
  f.body = std::move(body);
  return f;
}

}  // namespace

Frame make_beacon(const MacAddress& bssid, const Beacon& body,
                  std::uint16_t sequence) {
  return make_management(ManagementSubtype::kBeacon, MacAddress::broadcast(),
                         bssid, bssid, body.to_body(), sequence);
}

Frame make_deauth(const MacAddress& ra, const MacAddress& ta,
                  const MacAddress& bssid, ReasonCode reason,
                  std::uint16_t sequence) {
  return make_management(ManagementSubtype::kDeauthentication, ra, ta, bssid,
                         Deauthentication{reason}.to_body(), sequence);
}

Frame make_probe_request(const MacAddress& ta, const ProbeRequest& body,
                         std::uint16_t sequence) {
  return make_management(ManagementSubtype::kProbeRequest,
                         MacAddress::broadcast(), ta, MacAddress::broadcast(),
                         body.to_body(), sequence);
}

Frame make_probe_response(const MacAddress& ra, const MacAddress& bssid,
                          const Beacon& body, std::uint16_t sequence) {
  return make_management(ManagementSubtype::kProbeResponse, ra, bssid, bssid,
                         body.to_body(), sequence);
}

Frame make_authentication(const MacAddress& ra, const MacAddress& ta,
                          const MacAddress& bssid, const Authentication& body,
                          std::uint16_t sequence) {
  return make_management(ManagementSubtype::kAuthentication, ra, ta, bssid,
                         body.to_body(), sequence);
}

Frame make_assoc_request(const MacAddress& ra, const MacAddress& ta,
                         const AssociationRequest& body,
                         std::uint16_t sequence) {
  return make_management(ManagementSubtype::kAssocRequest, ra, ta, ra,
                         body.to_body(), sequence);
}

Frame make_assoc_response(const MacAddress& ra, const MacAddress& ta,
                          const AssociationResponse& body,
                          std::uint16_t sequence) {
  return make_management(ManagementSubtype::kAssocResponse, ra, ta, ta,
                         body.to_body(), sequence);
}

}  // namespace politewifi::frames
