#include "frames/data.h"

namespace politewifi::frames {

void CcmpHeader::serialize(ByteWriter& w) const {
  // PN0 PN1 | rsvd | key-id/ExtIV | PN2 PN3 PN4 PN5
  w.u8(static_cast<std::uint8_t>(packet_number));
  w.u8(static_cast<std::uint8_t>(packet_number >> 8));
  w.u8(0);  // reserved
  w.u8(static_cast<std::uint8_t>(0x20 | ((key_id & 0x03) << 6)));  // ExtIV set
  w.u8(static_cast<std::uint8_t>(packet_number >> 16));
  w.u8(static_cast<std::uint8_t>(packet_number >> 24));
  w.u8(static_cast<std::uint8_t>(packet_number >> 32));
  w.u8(static_cast<std::uint8_t>(packet_number >> 40));
}

std::optional<CcmpHeader> CcmpHeader::deserialize(ByteReader& r) {
  if (r.remaining() < kSize) return std::nullopt;
  CcmpHeader h;
  const std::uint64_t pn0 = r.u8();
  const std::uint64_t pn1 = r.u8();
  r.u8();  // reserved
  const std::uint8_t keyid_octet = r.u8();
  if ((keyid_octet & 0x20) == 0) return std::nullopt;  // ExtIV must be set
  h.key_id = (keyid_octet >> 6) & 0x03;
  const std::uint64_t pn2 = r.u8();
  const std::uint64_t pn3 = r.u8();
  const std::uint64_t pn4 = r.u8();
  const std::uint64_t pn5 = r.u8();
  h.packet_number = pn0 | (pn1 << 8) | (pn2 << 16) | (pn3 << 24) |
                    (pn4 << 32) | (pn5 << 40);
  return h;
}

Frame make_data_to_ds(const MacAddress& bssid, const MacAddress& sa,
                      const MacAddress& da, Bytes msdu,  // pw-lint: allow(by-value-bytes)
                      std::uint16_t sequence) {
  Frame f;
  f.fc = FrameControl::data(DataSubtype::kData);
  f.fc.to_ds = true;
  f.addr1 = bssid;  // RA = AP
  f.addr2 = sa;     // TA = source STA
  f.addr3 = da;     // DA behind the DS
  f.seq.sequence = sequence;
  f.body = std::move(msdu);
  return f;
}

Frame make_data_from_ds(const MacAddress& bssid, const MacAddress& sa,
                        const MacAddress& da, Bytes msdu,  // pw-lint: allow(by-value-bytes)
                        std::uint16_t sequence) {
  Frame f;
  f.fc = FrameControl::data(DataSubtype::kData);
  f.fc.from_ds = true;
  f.addr1 = da;     // RA = destination STA
  f.addr2 = bssid;  // TA = AP
  f.addr3 = sa;     // original source
  f.seq.sequence = sequence;
  f.body = std::move(msdu);
  return f;
}

Frame make_qos_data_to_ds(const MacAddress& bssid, const MacAddress& sa,
                          const MacAddress& da, Bytes msdu,  // pw-lint: allow(by-value-bytes)
                          std::uint16_t sequence, std::uint8_t tid) {
  Frame f = make_data_to_ds(bssid, sa, da, std::move(msdu), sequence);
  f.fc.subtype = static_cast<std::uint8_t>(DataSubtype::kQosData);
  f.qos_control = tid & 0x0F;
  return f;
}

Frame make_ps_poll(const MacAddress& bssid, const MacAddress& ta,
                   std::uint16_t aid) {
  Frame f;
  f.fc = FrameControl::control(ControlSubtype::kPsPoll);
  f.duration_id = static_cast<std::uint16_t>(0xC000 | (aid & 0x3FFF));
  f.addr1 = bssid;
  f.addr2 = ta;
  return f;
}

std::uint16_t ps_poll_aid(const Frame& frame) {
  return frame.duration_id & 0x3FFF;
}

}  // namespace politewifi::frames
