#include "frames/frame_template.h"

#include "common/check.h"
#include "common/crc32.h"
#include "frames/serializer.h"

namespace politewifi::frames {

namespace {

/// Template match: everything that lands on air must be equal except the
/// two fields the cache knows how to patch (sequence control and the
/// retry bit). Absent fields (by fc-implied layout) are ignored — they
/// never reach the octets.
bool matches_except_seq_retry(const Frame& a, const Frame& b) {
  const FrameControl& x = a.fc;
  const FrameControl& y = b.fc;
  if (x.protocol_version != y.protocol_version || x.type != y.type ||
      x.subtype != y.subtype || x.to_ds != y.to_ds || x.from_ds != y.from_ds ||
      x.more_fragments != y.more_fragments ||
      x.power_management != y.power_management || x.more_data != y.more_data ||
      x.protected_frame != y.protected_frame || x.order != y.order) {
    return false;
  }
  if (a.duration_id != b.duration_id || a.addr1 != b.addr1) return false;
  if (a.has_addr2() && a.addr2 != b.addr2) return false;
  if (a.has_addr3() && a.addr3 != b.addr3) return false;
  if (a.has_addr4() && a.addr4 != b.addr4) return false;
  if (a.has_qos_control() && a.qos_control != b.qos_control) return false;
  return a.body == b.body;
}

void patch_u16le(Bytes& raw, std::size_t offset, std::uint16_t v) {
  raw[offset] = static_cast<std::uint8_t>(v);
  raw[offset + 1] = static_cast<std::uint8_t>(v >> 8);
}

}  // namespace

FrameTemplateCache::Entry& FrameTemplateCache::slot_for(const Frame& frame) {
  // FNV-1a over the fields that distinguish steady-state templates: the
  // receiver, the transmitter and the frame shape.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const std::uint8_t b : frame.addr1.octets()) mix(b);
  if (frame.has_addr2()) {
    for (const std::uint8_t b : frame.addr2.octets()) mix(b);
  }
  mix(static_cast<std::uint64_t>(frame.fc.type));
  mix(frame.fc.subtype);
  mix(frame.body.size());
  return entries_[h & (kEntries - 1)];
}

void FrameTemplateCache::render_full(const Frame& frame, Entry& e,
                                     PpduPool& pool) {
  e.used = true;
  // Field-wise proto update: assign() keeps the body's capacity, so a
  // stream whose body changes per frame (beacon timestamps) still renders
  // without steady-state allocations.
  e.proto.fc = frame.fc;
  e.proto.duration_id = frame.duration_id;
  e.proto.addr1 = frame.addr1;
  e.proto.addr2 = frame.addr2;
  e.proto.addr3 = frame.addr3;
  e.proto.addr4 = frame.addr4;
  e.proto.seq = frame.seq;
  e.proto.qos_control = frame.qos_control;
  e.proto.body.assign(frame.body.begin(), frame.body.end());

  PpduRef fresh = pool.acquire();
  serialize_into(frame, fresh.mutable_octets());
  e.rendered = std::move(fresh);
  e.seq_offset =
      frame.has_sequence_control() ? kSequenceControlOffset : std::size_t{0};
  const std::size_t prefix =
      e.seq_offset != 0 ? e.seq_offset : e.rendered.size() - 4;
  e.prefix_crc = crc32_update(crc32_init(), e.rendered.bytes().first(prefix));
}

PpduRef FrameTemplateCache::render(const Frame& frame, PpduPool& pool) {
  Entry& e = slot_for(frame);
  if (!e.used || !matches_except_seq_retry(e.proto, frame)) {
    ++stats_.misses;
    render_full(frame, e, pool);
    return e.rendered;
  }

  ++stats_.hits;
  const bool retry_changed = e.proto.fc.retry != frame.fc.retry;
  const bool seq_changed =
      e.seq_offset != 0 &&
      (e.proto.seq.sequence != frame.seq.sequence ||
       e.proto.seq.fragment != frame.seq.fragment);
  if (!retry_changed && !seq_changed) {
    return e.rendered;  // exact repeat: hand out another reference
  }

  if (e.rendered.unique()) {
    ++stats_.in_place_patches;
  } else {
    // Receivers still hold the previous frame's octets — shared buffers
    // are immutable, so the patch lands in a fresh pooled buffer.
    ++stats_.copied_patches;
    PpduRef fresh = pool.acquire();
    fresh.mutable_octets().assign(e.rendered.octets().begin(),
                                  e.rendered.octets().end());
    stats_.bytes_copied += fresh.size();
    e.rendered = std::move(fresh);
  }

  Bytes& raw = e.rendered.mutable_octets();
  const std::size_t prefix = e.seq_offset != 0 ? e.seq_offset : raw.size() - 4;
  if (retry_changed) {
    patch_u16le(raw, 0, frame.fc.pack());
    e.proto.fc.retry = frame.fc.retry;
    // The frame-control bytes sit in the CRC prefix: re-memoize it.
    e.prefix_crc = crc32_update(
        crc32_init(), std::span<const std::uint8_t>(raw).first(prefix));
  }
  if (seq_changed) {
    patch_u16le(raw, e.seq_offset, frame.seq.pack());
    e.proto.seq = frame.seq;
  }
  // FCS: resume from the memoized prefix state and run only the suffix
  // (sequence control onward) through the slicing-by-8 tables.
  const std::uint32_t crc = crc32_final(crc32_update(
      e.prefix_crc, std::span<const std::uint8_t>(raw).subspan(
                        prefix, raw.size() - 4 - prefix)));
  raw[raw.size() - 4] = static_cast<std::uint8_t>(crc);
  raw[raw.size() - 3] = static_cast<std::uint8_t>(crc >> 8);
  raw[raw.size() - 2] = static_cast<std::uint8_t>(crc >> 16);
  raw[raw.size() - 1] = static_cast<std::uint8_t>(crc >> 24);

#if PW_AUDIT_ENABLED
  PW_CHECK(raw == serialize(frame),
           "patched template diverges from a fresh serialization");
#endif
  return e.rendered;
}

}  // namespace politewifi::frames
