// Typed management-frame payloads.
//
// Each struct models a management frame body (IEEE 802.11-2016 §9.3.3) and
// converts to/from the raw body bytes of a `Frame`. The AP and client MAC
// state machines speak these; the attacker never needs any of them — which
// is the point of the paper.
#pragma once

#include <cstdint>
#include <optional>

#include "common/mac_address.h"
#include "frames/frame.h"
#include "frames/information_elements.h"

namespace politewifi::frames {

/// Capability Information field bits we model.
struct CapabilityInfo {
  bool ess = true;       // set by infrastructure APs
  bool ibss = false;     // ad-hoc
  bool privacy = false;  // WEP/WPA/WPA2 required

  std::uint16_t pack() const {
    std::uint16_t v = 0;
    if (ess) v |= 1u << 0;
    if (ibss) v |= 1u << 1;
    if (privacy) v |= 1u << 4;
    return v;
  }
  static CapabilityInfo unpack(std::uint16_t raw) {
    return {.ess = (raw & 1u) != 0,
            .ibss = (raw & 2u) != 0,
            .privacy = (raw & 0x10u) != 0};
  }
  friend bool operator==(const CapabilityInfo&,
                         const CapabilityInfo&) = default;
};

/// Beacon / Probe Response body: timestamp, interval, capabilities, IEs.
struct Beacon {
  std::uint64_t timestamp_us = 0;    // TSF timer at transmission
  std::uint16_t beacon_interval = 100;  // in TUs (1 TU = 1024 us)
  CapabilityInfo capability;
  ElementList elements;

  Bytes to_body() const;
  static std::optional<Beacon> from_body(std::span<const std::uint8_t> body);

  friend bool operator==(const Beacon&, const Beacon&) = default;
};

/// 802.11 reason codes used in deauthentication (§9.4.1.7).
enum class ReasonCode : std::uint16_t {
  kUnspecified = 1,
  kPrevAuthNotValid = 2,       // "class 2 frame from nonauthenticated STA"
  kDeauthLeaving = 3,
  kInactivity = 4,
  kClass2FrameFromNonauthSta = 6,
  kClass3FrameFromNonassocSta = 7,
};

/// Deauthentication / Disassociation body: a bare reason code. Figure 3's
/// confused APs fire these at the attacker (reason 6/7) while still ACKing.
struct Deauthentication {
  ReasonCode reason = ReasonCode::kUnspecified;

  Bytes to_body() const;
  static std::optional<Deauthentication> from_body(
      std::span<const std::uint8_t> body);

  friend bool operator==(const Deauthentication&,
                         const Deauthentication&) = default;
};

/// Authentication body (open system, the pre-WPA2 handshake step).
struct Authentication {
  std::uint16_t algorithm = 0;  // 0 = open system
  std::uint16_t sequence = 1;   // 1 = request, 2 = response
  std::uint16_t status = 0;     // 0 = success

  Bytes to_body() const;
  static std::optional<Authentication> from_body(
      std::span<const std::uint8_t> body);

  friend bool operator==(const Authentication&,
                         const Authentication&) = default;
};

/// Association request body.
struct AssociationRequest {
  CapabilityInfo capability;
  std::uint16_t listen_interval = 10;  // beacons between PS wakeups
  ElementList elements;                // SSID, rates

  Bytes to_body() const;
  static std::optional<AssociationRequest> from_body(
      std::span<const std::uint8_t> body);

  friend bool operator==(const AssociationRequest&,
                         const AssociationRequest&) = default;
};

/// Association response body.
struct AssociationResponse {
  CapabilityInfo capability;
  std::uint16_t status = 0;  // 0 = success
  std::uint16_t aid = 0;     // association ID (1..2007), used in TIM
  ElementList elements;

  Bytes to_body() const;
  static std::optional<AssociationResponse> from_body(
      std::span<const std::uint8_t> body);

  friend bool operator==(const AssociationResponse&,
                         const AssociationResponse&) = default;
};

/// Probe request body: SSID (possibly wildcard/empty) + rates.
struct ProbeRequest {
  ElementList elements;

  Bytes to_body() const;
  static std::optional<ProbeRequest> from_body(
      std::span<const std::uint8_t> body);

  friend bool operator==(const ProbeRequest&, const ProbeRequest&) = default;
};

// --- Frame-level factories --------------------------------------------------

Frame make_beacon(const MacAddress& bssid, const Beacon& body,
                  std::uint16_t sequence);
Frame make_deauth(const MacAddress& ra, const MacAddress& ta,
                  const MacAddress& bssid, ReasonCode reason,
                  std::uint16_t sequence);
Frame make_probe_request(const MacAddress& ta, const ProbeRequest& body,
                         std::uint16_t sequence);
Frame make_probe_response(const MacAddress& ra, const MacAddress& bssid,
                          const Beacon& body, std::uint16_t sequence);
Frame make_authentication(const MacAddress& ra, const MacAddress& ta,
                          const MacAddress& bssid, const Authentication& body,
                          std::uint16_t sequence);
Frame make_assoc_request(const MacAddress& ra, const MacAddress& ta,
                         const AssociationRequest& body,
                         std::uint16_t sequence);
Frame make_assoc_response(const MacAddress& ra, const MacAddress& ta,
                          const AssociationResponse& body,
                          std::uint16_t sequence);

}  // namespace politewifi::frames
