#include "frames/frame.h"

#include <cstdio>

namespace politewifi::frames {

std::size_t Frame::header_size() const {
  if (fc.is_control()) {
    // FC (2) + Duration (2) + RA (6) [+ TA (6)]
    return has_addr2() ? 16 : 10;
  }
  std::size_t n = 2 + 2 + 6 + 6 + 6 + 2;  // FC, dur, addr1-3, seq ctl
  if (has_addr4()) n += 6;
  if (has_qos_control()) n += 2;
  return n;
}

MacAddress Frame::destination() const {
  if (!has_addr3()) return addr1;
  if (fc.to_ds && fc.from_ds) return addr3;
  if (fc.to_ds) return addr3;  // To the DS: DA is addr3
  return addr1;                // From DS or IBSS: DA is addr1
}

MacAddress Frame::source() const {
  if (!has_addr3()) return addr2;
  if (fc.to_ds && fc.from_ds) return addr4;
  if (fc.from_ds) return addr3;  // From the DS: SA is addr3
  return addr2;                  // To DS or IBSS: SA is addr2
}

MacAddress Frame::bssid() const {
  if (!has_addr3()) return MacAddress{};
  if (fc.to_ds && fc.from_ds) return MacAddress{};  // WDS has no single BSSID
  if (fc.to_ds) return addr1;
  if (fc.from_ds) return addr2;
  return addr3;  // IBSS / management
}

std::string Frame::summary() const {
  std::string s = fc.subtype_name();
  char buf[64];
  if (has_sequence_control()) {
    std::snprintf(buf, sizeof buf, ", SN=%u", seq.sequence);
    s += buf;
  }
  std::string flags;
  if (fc.to_ds) flags += 'T';
  if (fc.from_ds) flags += 'F';
  if (fc.retry) flags += 'R';
  if (fc.power_management) flags += 'P';
  if (fc.protected_frame) flags += 'C';  // "C" = cryptographically protected
  if (!flags.empty()) s += ", Flags=" + flags;
  return s;
}

Frame make_ack(const MacAddress& ra) {
  Frame f;
  f.fc = FrameControl::control(ControlSubtype::kAck);
  f.duration_id = 0;  // final frame of the exchange: NAV ends
  f.addr1 = ra;
  return f;
}

Frame make_cts(const MacAddress& ra, std::uint16_t duration_us) {
  Frame f;
  f.fc = FrameControl::control(ControlSubtype::kCts);
  f.duration_id = duration_us;
  f.addr1 = ra;
  return f;
}

Frame make_rts(const MacAddress& ra, const MacAddress& ta,
               std::uint16_t duration_us) {
  Frame f;
  f.fc = FrameControl::control(ControlSubtype::kRts);
  f.duration_id = duration_us;
  f.addr1 = ra;
  f.addr2 = ta;
  return f;
}

Frame make_null_function(const MacAddress& ra, const MacAddress& ta,
                         std::uint16_t sequence) {
  Frame f;
  f.fc = FrameControl::data(DataSubtype::kNull);
  f.fc.to_ds = true;  // cosmetic: mimics a STA->AP keep-alive
  f.duration_id = 44;  // SIFS + ACK airtime at 24 Mb/s, rounded up
  f.addr1 = ra;
  f.addr2 = ta;
  f.addr3 = ra;  // BSSID slot; victim never validates it
  f.seq.sequence = sequence;
  return f;
}

}  // namespace politewifi::frames
