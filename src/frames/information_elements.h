// 802.11 Information Elements (tagged parameters).
//
// Management frame bodies carry a TLV list: Element ID (1 octet), Length
// (1 octet), value. We model the handful the simulator needs — SSID,
// Supported Rates, DS Parameter Set (channel), TIM (power save), RSN
// (signals WPA2) — plus pass-through for unknown IDs so sniffed beacons
// round-trip losslessly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/byte_buffer.h"

namespace politewifi::frames {

enum class ElementId : std::uint8_t {
  kSsid = 0,
  kSupportedRates = 1,
  kDsParameterSet = 3,
  kTim = 5,
  kRsn = 48,
  kVendorSpecific = 221,
};

/// One raw information element.
struct InformationElement {
  std::uint8_t id = 0;
  Bytes value;

  friend bool operator==(const InformationElement&,
                         const InformationElement&) = default;
};

/// An ordered IE list with typed accessors for the elements we understand.
class ElementList {
 public:
  ElementList() = default;

  void add(std::uint8_t id, Bytes value) {  // pw-lint: allow(by-value-bytes)
    elements_.push_back({id, std::move(value)});
  }
  void add(ElementId id, Bytes value) {  // pw-lint: allow(by-value-bytes)
    add(static_cast<std::uint8_t>(id), std::move(value));
  }

  const std::vector<InformationElement>& elements() const { return elements_; }

  /// First element with the given ID, if any.
  const InformationElement* find(ElementId id) const;

  // --- Typed helpers -------------------------------------------------------

  void set_ssid(const std::string& ssid);
  std::optional<std::string> ssid() const;

  /// Rates in units of 500 kb/s, high bit = basic rate.
  void set_supported_rates(const std::vector<std::uint8_t>& rates);
  std::vector<std::uint8_t> supported_rates() const;

  void set_channel(std::uint8_t channel);
  std::optional<std::uint8_t> channel() const;

  /// Traffic Indication Map: DTIM count/period plus the bitmap of
  /// association IDs with buffered traffic. Drives power-save wakeups.
  struct Tim {
    std::uint8_t dtim_count = 0;
    std::uint8_t dtim_period = 1;
    std::vector<std::uint16_t> buffered_aids;  // AIDs with pending traffic
  };
  void set_tim(const Tim& tim);
  std::optional<Tim> tim() const;

  /// Minimal RSN element marking the BSS as WPA2-PSK/CCMP.
  void set_rsn_wpa2_psk();
  bool has_rsn() const { return find(ElementId::kRsn) != nullptr; }

  // --- Codec ---------------------------------------------------------------

  void serialize(ByteWriter& w) const;
  /// Parses elements until the reader is exhausted; throws BufferUnderflow
  /// on a length field that overruns the buffer.
  static ElementList deserialize(ByteReader& r);

  friend bool operator==(const ElementList&, const ElementList&) = default;

 private:
  std::vector<InformationElement> elements_;
};

}  // namespace politewifi::frames
