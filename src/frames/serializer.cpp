#include "frames/serializer.h"

#include "common/check.h"
#include "common/crc32.h"

namespace politewifi::frames {

namespace {

#if PW_AUDIT_ENABLED
/// Round-trip audit, re-entrancy guarded (the audit itself serializes).
/// Every serialized MPDU must parse back FCS-clean and re-encode to the
/// same octets: the codec pair is a bijection on well-formed frames, and
/// any drift here silently rewrites what goes on the air.
thread_local bool in_serialize_audit = false;

void audit_round_trip(const Frame& frame, const Bytes& raw) {
  if (in_serialize_audit) return;
  in_serialize_audit = true;
  PW_CHECK_EQ(raw.size(), frame.size_bytes());
  const DeserializeResult parsed = deserialize(raw);
  PW_CHECK(parsed.fcs_ok, "freshly serialized frame fails its own FCS");
  PW_CHECK(parsed.frame.has_value(),
           "freshly serialized frame is structurally unparseable");
  const Bytes again = serialize(*parsed.frame);
  PW_CHECK(again == raw,
           "serialize(deserialize(x)) != x: codec round-trip drift "
           "(%zu vs %zu octets)",
           again.size(), raw.size());
  in_serialize_audit = false;
}
#endif

void write_mac(ByteWriter& w, const MacAddress& m) { w.bytes(m.octets()); }

MacAddress read_mac(ByteReader& r) {
  auto b = r.bytes(MacAddress::kSize);
  std::array<std::uint8_t, MacAddress::kSize> octets;
  std::copy(b.begin(), b.end(), octets.begin());
  return MacAddress{octets};
}

}  // namespace

void serialize_into(const Frame& frame, Bytes& out) {
  ByteWriter w(std::move(out));
  w.u16le(frame.fc.pack());
  w.u16le(frame.duration_id);
  write_mac(w, frame.addr1);
  if (frame.has_addr2()) write_mac(w, frame.addr2);
  if (frame.has_addr3()) write_mac(w, frame.addr3);
  if (frame.has_sequence_control()) w.u16le(frame.seq.pack());
  if (frame.has_addr4()) write_mac(w, frame.addr4);
  if (frame.has_qos_control()) w.u16le(frame.qos_control);
  w.bytes(frame.body);
  w.u32le(crc32(w.view()));
  out = w.take();
#if PW_AUDIT_ENABLED
  audit_round_trip(frame, out);
#endif
}

Bytes serialize(const Frame& frame) {
  Bytes raw;
  raw.reserve(frame.size_bytes());
  serialize_into(frame, raw);
  return raw;
}

DeserializeResult deserialize(std::span<const std::uint8_t> raw) {
  DeserializeResult result;
  if (raw.size() < 10 + 4) return result;  // smaller than the shortest MPDU

  // FCS check over everything but the trailing 4 octets.
  const auto payload = raw.first(raw.size() - 4);
  ByteReader fcs_reader(raw.subspan(raw.size() - 4));
  const std::uint32_t received_fcs = fcs_reader.u32le();
  result.fcs_ok = crc32(payload) == received_fcs;

  try {
    ByteReader r(payload);
    Frame f;
    f.fc = FrameControl::unpack(r.u16le());
    f.duration_id = r.u16le();
    f.addr1 = read_mac(r);
    if (f.has_addr2()) f.addr2 = read_mac(r);
    if (f.has_addr3()) f.addr3 = read_mac(r);
    if (f.has_sequence_control()) f.seq = SequenceControl::unpack(r.u16le());
    if (f.has_addr4()) f.addr4 = read_mac(r);
    if (f.has_qos_control()) f.qos_control = r.u16le();
    auto rest = r.rest();
    f.body.assign(rest.begin(), rest.end());
    result.frame = std::move(f);
  } catch (const BufferUnderflow&) {
    // Truncated header: structurally undecodable. result.frame stays empty.
  }
  return result;
}

void corrupt(Bytes& raw, unsigned nflips, std::uint64_t seed) {
  // splitmix64 — tiny, deterministic, independent of <random>.
  auto next = [&seed]() {
    seed += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  if (raw.empty()) return;
  for (unsigned i = 0; i < nflips; ++i) {
    const std::uint64_t r = next();
    raw[r % raw.size()] ^= static_cast<std::uint8_t>(1u << (r >> 32 & 7));
  }
}

}  // namespace politewifi::frames
