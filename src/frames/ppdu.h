// Shared immutable PPDU payloads with pooled backing buffers.
//
// A transmission's on-air octets used to be a by-value `Bytes` copied once
// per eligible receiver during fan-out; at the paper's injection rates
// (1000 fps battery drain, 150 fps CSI harvesting, each frame heard by
// dozens of radios) the allocator — not the physics — dominated the hot
// loop. A PpduRef is a small ref-counted handle to one immutable buffer:
// every receiver of a transmission shares the same octets, and the buffer
// returns to its pool when the last reference drops, so steady-state
// injection runs without a single heap allocation.
//
// Lifetime rules (see CONTRIBUTING "Payload lifetime & zero-copy rules"):
//  - the octets are immutable while shared; only a unique() holder may
//    call mutable_octets() (PW_DCHECK-enforced),
//  - collision-corrupted receivers get a fresh pooled copy (copy-on-
//    corrupt) — intact receivers never copy,
//  - a pool and its refs belong to one simulation thread; the refcount is
//    deliberately non-atomic (sweep workers each own an independent sim).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_buffer.h"

namespace politewifi::frames {

class PpduPool;

/// Ref-counted handle to one immutable on-air octet string.
class PpduRef {
 public:
  PpduRef() = default;
  PpduRef(const PpduRef& other) : buf_(other.buf_) { retain(); }
  PpduRef(PpduRef&& other) noexcept : buf_(other.buf_) {
    other.buf_ = nullptr;
  }
  PpduRef& operator=(const PpduRef& other) {
    if (this != &other) {
      release();
      buf_ = other.buf_;
      retain();
    }
    return *this;
  }
  PpduRef& operator=(PpduRef&& other) noexcept {
    if (this != &other) {
      release();
      buf_ = other.buf_;
      other.buf_ = nullptr;
    }
    return *this;
  }
  ~PpduRef() { release(); }

  /// A freestanding (pool-less) ref holding a copy of `octets` — for
  /// call sites outside the simulator hot path.
  static PpduRef copy_of(std::span<const std::uint8_t> octets);

  explicit operator bool() const { return buf_ != nullptr; }
  bool empty() const { return buf_ == nullptr || buf_->octets.empty(); }
  std::size_t size() const { return buf_ == nullptr ? 0 : buf_->octets.size(); }

  const Bytes& octets() const;
  std::span<const std::uint8_t> bytes() const {
    return buf_ == nullptr ? std::span<const std::uint8_t>{}
                           : std::span<const std::uint8_t>(buf_->octets);
  }

  /// True when this is the only reference — the holder may mutate.
  bool unique() const { return buf_ != nullptr && buf_->refs == 1; }
  std::uint32_t use_count() const { return buf_ == nullptr ? 0 : buf_->refs; }

  /// Mutable access to the octets. Only legal while unique(): a shared
  /// buffer is immutable by contract (every receiver of a transmission
  /// reads the same bytes).
  Bytes& mutable_octets();

  void reset() {
    release();
    buf_ = nullptr;
  }

 private:
  friend class PpduPool;

  struct Buffer {
    Bytes octets;
    std::uint32_t refs = 0;
    bool on_free_list = false;
    /// Owning pool; nullptr = freestanding buffer (deleted on last
    /// release) — also how a destroyed pool orphans still-referenced
    /// buffers so late releases stay safe.
    PpduPool* pool = nullptr;
  };

  explicit PpduRef(Buffer* buf) : buf_(buf) { retain(); }

  void retain() {
    if (buf_ != nullptr) ++buf_->refs;
  }
  void release();

  Buffer* buf_ = nullptr;
};

/// Free-list pool of PPDU buffers. acquire() hands out an empty buffer
/// that keeps its previous capacity, so after warm-up the inject->
/// transmit->deliver path recycles the same few buffers forever.
///
/// Concurrency: the pool is *thread-confined*, not thread-safe — one
/// pool, its refs, and its (deliberately non-atomic) refcounts belong
/// to exactly one simulation thread; sweep workers each own an
/// independent Medium and pool. There is no mutex here on purpose, so
/// there is nothing for PW_GUARDED_BY to name: the confinement contract
/// is enforced dynamically instead (the TSan CI job runs the sweep and
/// equivalence suites, and ~PpduPool/audit() account for every buffer).
class PpduPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;       // served from the free list
    std::uint64_t allocations = 0;  // fresh heap buffers
  };

  PpduPool() = default;
  ~PpduPool();

  PpduPool(const PpduPool&) = delete;
  PpduPool& operator=(const PpduPool&) = delete;

  /// Off = every acquire() allocates a freestanding buffer and the last
  /// release deletes it — the pre-pool allocation behaviour, kept for the
  /// zero-copy/legacy equivalence property test.
  void set_pooling(bool on) { pooling_ = on; }
  bool pooling() const { return pooling_; }

  /// An empty, unique buffer (capacity retained from its previous life).
  PpduRef acquire();

  std::size_t total_buffers() const { return all_.size(); }
  std::size_t free_buffers() const { return free_.size(); }
  std::size_t live_buffers() const { return all_.size() - free_.size(); }
  const Stats& stats() const { return stats_; }

  /// PW_CHECK-fails on broken accounting: a free-list entry with live
  /// references, a buffer with refs==0 missing from the free list, or a
  /// duplicated free-list slot. Called from Medium::audit_coherence.
  void audit() const;

 private:
  friend class PpduRef;

  void release_buffer(PpduRef::Buffer* buf);

  std::vector<PpduRef::Buffer*> all_;   // pooled buffers, owned
  std::vector<PpduRef::Buffer*> free_;  // refs==0 subset of all_
  bool pooling_ = true;
  Stats stats_;
};

}  // namespace politewifi::frames
