// The 16-bit 802.11 Frame Control field (IEEE 802.11-2016 §9.2.4.1).
//
// Frame Control determines the layout of the rest of the MPDU: which
// address fields are present, whether a sequence-control field follows,
// and how the receiver must treat the frame. The Polite WiFi attack works
// precisely because the receive path looks at *only* this field, addr1 and
// the FCS before committing to an ACK.
#pragma once

#include <cstdint>
#include <string>

namespace politewifi::frames {

/// Frame type (2 bits).
enum class FrameType : std::uint8_t {
  kManagement = 0,
  kControl = 1,
  kData = 2,
  kExtension = 3,
};

/// Management frame subtypes (4 bits) we model.
enum class ManagementSubtype : std::uint8_t {
  kAssocRequest = 0,
  kAssocResponse = 1,
  kProbeRequest = 4,
  kProbeResponse = 5,
  kBeacon = 8,
  kDisassociation = 10,
  kAuthentication = 11,
  kDeauthentication = 12,
  kAction = 13,
};

/// Control frame subtypes (4 bits) we model.
enum class ControlSubtype : std::uint8_t {
  kBlockAckRequest = 8,
  kBlockAck = 9,
  kPsPoll = 10,
  kRts = 11,
  kCts = 12,
  kAck = 13,
  kCfEnd = 14,
};

/// Data frame subtypes (4 bits) we model. Null-function frames — data
/// frames with no payload — are the attacker's weapon of choice in the
/// paper because they are the smallest frame a receiver will ACK.
enum class DataSubtype : std::uint8_t {
  kData = 0,
  kNull = 4,
  kQosData = 8,
  kQosNull = 12,
};

/// Decoded Frame Control field.
struct FrameControl {
  std::uint8_t protocol_version = 0;  // always 0 in deployed 802.11
  FrameType type = FrameType::kData;
  std::uint8_t subtype = 0;  // raw 4-bit subtype; see typed accessors
  bool to_ds = false;
  bool from_ds = false;
  bool more_fragments = false;
  bool retry = false;
  bool power_management = false;
  bool more_data = false;
  bool protected_frame = false;  // a.k.a. WEP/Privacy bit; set for CCMP
  bool order = false;

  friend constexpr bool operator==(const FrameControl&,
                                   const FrameControl&) = default;

  /// Packs into the on-air 16-bit little-endian representation.
  std::uint16_t pack() const;
  static FrameControl unpack(std::uint16_t raw);

  // --- Typed constructors -------------------------------------------------

  static FrameControl management(ManagementSubtype s) {
    FrameControl fc;
    fc.type = FrameType::kManagement;
    fc.subtype = static_cast<std::uint8_t>(s);
    return fc;
  }

  static FrameControl control(ControlSubtype s) {
    FrameControl fc;
    fc.type = FrameType::kControl;
    fc.subtype = static_cast<std::uint8_t>(s);
    return fc;
  }

  static FrameControl data(DataSubtype s) {
    FrameControl fc;
    fc.type = FrameType::kData;
    fc.subtype = static_cast<std::uint8_t>(s);
    return fc;
  }

  // --- Queries -------------------------------------------------------------

  bool is_management() const { return type == FrameType::kManagement; }
  bool is_control() const { return type == FrameType::kControl; }
  bool is_data() const { return type == FrameType::kData; }

  bool is_subtype(ManagementSubtype s) const {
    return is_management() && subtype == static_cast<std::uint8_t>(s);
  }
  bool is_subtype(ControlSubtype s) const {
    return is_control() && subtype == static_cast<std::uint8_t>(s);
  }
  bool is_subtype(DataSubtype s) const {
    return is_data() && subtype == static_cast<std::uint8_t>(s);
  }

  bool is_ack() const { return is_subtype(ControlSubtype::kAck); }
  bool is_rts() const { return is_subtype(ControlSubtype::kRts); }
  bool is_cts() const { return is_subtype(ControlSubtype::kCts); }
  bool is_beacon() const { return is_subtype(ManagementSubtype::kBeacon); }
  bool is_deauth() const {
    return is_subtype(ManagementSubtype::kDeauthentication);
  }

  /// Null-function (no data) frames in either plain or QoS flavour.
  bool is_null_function() const {
    return is_subtype(DataSubtype::kNull) || is_subtype(DataSubtype::kQosNull);
  }

  bool is_qos_data() const {
    return is_data() && (subtype & 0x08) != 0;
  }

  /// Human-readable subtype name matching Wireshark's "Info" column
  /// vocabulary ("Null function (No data)", "Acknowledgement", ...).
  std::string subtype_name() const;
};

}  // namespace politewifi::frames
