// MPDU <-> octets codec with FCS.
//
// `serialize` appends the real CRC-32 FCS; `deserialize` verifies it and
// reports failure the way hardware does — by telling the caller the frame
// is not valid, so the MAC never sees it and (critically) never ACKs it.
#pragma once

#include <optional>

#include "common/byte_buffer.h"
#include "frames/frame.h"

namespace politewifi::frames {

/// Serializes `frame` to its exact on-air octet string, FCS included.
Bytes serialize(const Frame& frame);

/// Serializes into `out`, reusing its capacity (the previous contents are
/// discarded). The allocation-free path for pooled PPDU buffers; produces
/// exactly the octets serialize() would.
void serialize_into(const Frame& frame, Bytes& out);

/// Octet offset of the Sequence Control field for frames that carry one
/// (fc + duration + addr1..addr3). The frame-template cache patches the
/// two bytes at this offset in place.
inline constexpr std::size_t kSequenceControlOffset = 2 + 2 + 6 + 6 + 6;

/// Outcome of deserializing a received octet string.
struct DeserializeResult {
  std::optional<Frame> frame;  // nullopt if the frame could not be decoded
  bool fcs_ok = false;         // FCS verification result
};

/// Parses an on-air octet string. A frame with a bad FCS may still be
/// structurally parseable (frame is set, fcs_ok false) — sniffers display
/// such frames, but a receiving MAC must drop them without acknowledging.
DeserializeResult deserialize(std::span<const std::uint8_t> raw);

/// Flips `nflips` random-ish bits in `raw` (deterministic given `seed`),
/// modelling channel corruption for failure-injection tests.
void corrupt(Bytes& raw, unsigned nflips, std::uint64_t seed);

}  // namespace politewifi::frames
