// The generic 802.11 MPDU.
//
// One Frame type covers management, control and data MPDUs; the Frame
// Control field determines which header fields are present on air, and the
// serializer honours that layout exactly (ACK = 14 octets, RTS = 20,
// data/management header = 24 [+2 QoS], everything + 4-octet FCS).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/byte_buffer.h"
#include "common/mac_address.h"
#include "frames/frame_control.h"

namespace politewifi::frames {

using politewifi::Bytes;
using politewifi::MacAddress;

/// Sequence Control field helpers: 12-bit sequence number + 4-bit fragment.
struct SequenceControl {
  std::uint16_t sequence = 0;  // 0..4095
  std::uint8_t fragment = 0;   // 0..15

  std::uint16_t pack() const {
    return static_cast<std::uint16_t>((sequence & 0x0FFF) << 4) |
           (fragment & 0x0F);
  }
  static SequenceControl unpack(std::uint16_t raw) {
    return {.sequence = static_cast<std::uint16_t>(raw >> 4),
            .fragment = static_cast<std::uint8_t>(raw & 0x0F)};
  }

  friend constexpr bool operator==(const SequenceControl&,
                                   const SequenceControl&) = default;
};

/// A MAC Protocol Data Unit.
///
/// Field presence (mirrors the standard):
///  - addr1 (receiver address) is always present;
///  - addr2 (transmitter) is absent only in ACK and CTS frames;
///  - addr3 and sequence control are present in data/management frames;
///  - addr4 only when both ToDS and FromDS are set (WDS; modeled but rare);
///  - qos_control only in QoS data subtypes.
struct Frame {
  FrameControl fc;
  std::uint16_t duration_id = 0;  // Duration/ID field, microseconds (NAV)
  MacAddress addr1;               // receiver address (RA)
  MacAddress addr2;               // transmitter address (TA), if present
  MacAddress addr3;               // BSSID / DA / SA depending on DS bits
  MacAddress addr4;               // WDS only
  SequenceControl seq;
  std::uint16_t qos_control = 0;
  Bytes body;  // frame body (management payload / MSDU / CCMP blob)

  // --- Field presence ------------------------------------------------------

  bool has_addr2() const {
    return !(fc.is_ack() || fc.is_cts());
  }
  bool has_addr3() const { return fc.is_management() || fc.is_data(); }
  bool has_addr4() const { return fc.is_data() && fc.to_ds && fc.from_ds; }
  bool has_sequence_control() const { return has_addr3(); }
  bool has_qos_control() const { return fc.is_qos_data(); }

  /// MAC header length in octets (without FCS or body).
  std::size_t header_size() const;

  /// Full on-air MPDU size in octets, including the 4-octet FCS.
  std::size_t size_bytes() const { return header_size() + body.size() + 4; }

  // --- Convenience accessors ----------------------------------------------

  const MacAddress& receiver() const { return addr1; }
  const MacAddress& transmitter() const { return addr2; }

  /// Destination as seen by upper layers, following the ToDS/FromDS rules.
  MacAddress destination() const;
  /// Source as seen by upper layers.
  MacAddress source() const;
  /// The BSSID this frame belongs to (for data/management frames).
  MacAddress bssid() const;

  /// One-line rendering modeled on Wireshark's packet list, e.g.
  /// "Null function (No data), SN=12, Flags=...C".
  std::string summary() const;

  friend bool operator==(const Frame&, const Frame&) = default;
};

// --- Factory helpers for control frames (used by the low-MAC) --------------

/// ACK: 14 octets on air. `ra` is copied from addr2 of the frame being
/// acknowledged — which is how the victim ends up ACKing the attacker's
/// spoofed aa:bb:bb:bb:bb:bb address.
Frame make_ack(const MacAddress& ra);

/// CTS: 14 octets. `duration_us` continues the NAV set by the eliciting RTS.
Frame make_cts(const MacAddress& ra, std::uint16_t duration_us);

/// RTS: 20 octets. Duration covers CTS + data + ACK + 3*SIFS.
Frame make_rts(const MacAddress& ra, const MacAddress& ta,
               std::uint16_t duration_us);

/// Null-function data frame (no payload) — the paper's fake frame.
/// ToDS is set as a station-to-AP frame would have it; the victim does not
/// check any of this before ACKing.
Frame make_null_function(const MacAddress& ra, const MacAddress& ta,
                         std::uint16_t sequence);

}  // namespace politewifi::frames
