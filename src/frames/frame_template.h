// Frame-template cache: serialize once, patch seq/retry in place.
//
// The paper's attacks stream the *same* frame thousands of times per
// second — a null-function to the victim with only the sequence number
// advancing, or a victim's ACK to the one spoofed address. Serializing
// (header layout + CRC over every octet + an allocation) per frame is
// pure waste: this cache renders a frame once into a pooled buffer and,
// while subsequent frames differ only in sequence number and/or retry
// bit, patches those bytes in place and fixes the FCS incrementally —
// the CRC prefix up to the sequence-control field is memoized, so only
// the suffix reruns through the slicing-by-8 tables.
//
// The rendered octets are handed out as shared PpduRefs; if a previous
// frame's buffer is still in flight (receivers hold references), the
// patch lands in a fresh pooled buffer instead — shared octets are never
// mutated.
#pragma once

#include <cstdint>

#include "frames/frame.h"
#include "frames/ppdu.h"

namespace politewifi::frames {

class FrameTemplateCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;            // template matched, seq/retry patched
    std::uint64_t misses = 0;          // full render
    std::uint64_t in_place_patches = 0;  // hit with a unique buffer
    std::uint64_t copied_patches = 0;  // hit, but the buffer was shared
    std::uint64_t bytes_copied = 0;    // octets copied by shared-hit renders
  };

  /// The on-air octets of `frame`, byte-identical to serialize(frame),
  /// with buffers drawn from `pool`.
  PpduRef render(const Frame& frame, PpduPool& pool);

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    bool used = false;
    Frame proto;        // the frame `rendered` currently encodes
    PpduRef rendered;   // cache's reference to the rendered octets
    std::size_t seq_offset = 0;   // 0 = frame has no sequence control
    std::uint32_t prefix_crc = 0;  // CRC state over [0, seq_offset)
  };

  /// Direct-mapped and tiny on purpose: a station's steady-state traffic
  /// is a handful of distinct frame shapes (its ACK, its injected fake,
  /// its beacon), and a miss just re-renders.
  static constexpr std::size_t kEntries = 8;

  Entry& slot_for(const Frame& frame);
  static void render_full(const Frame& frame, Entry& e, PpduPool& pool);

  Entry entries_[kEntries];
  Stats stats_;
};

}  // namespace politewifi::frames
