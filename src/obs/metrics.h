// Observability: the engine's metrics registry and its zero-cost
// instrumentation macros.
//
// Every counter, gauge and histogram the engine can emit is declared in
// the central catalogue below — there is no lazy registration, so the
// metrics block always has exactly the same shape (every name present,
// zeros included) no matter which code paths ran. That is what lets the
// canonical `metrics` JSON be golden-gated like every other document
// this repo emits.
//
// Determinism across PW_THREADS is by construction: all cells are
// process-global relaxed atomics updated only with commutative integer
// operations — counters and histogram buckets accumulate by addition,
// gauges merge by max — so the collected totals are independent of
// thread interleaving. The one thing that is *not* deterministic, wall
// time, lives in histograms flagged `wall` which the canonical
// `to_json()` excludes; wall spans flow to the TimelineProfiler instead
// (see OBSERVABILITY.md for the full rules).
//
// Cost model: with PW_METRICS=OFF (CMake option) the PW_* macros expand
// to `((void)0)` — the instrumented layers compile exactly as before.
// With the default ON build, every macro first tests a relaxed atomic
// bool (set only by `pw_run --metrics`, benches, and tests), so runs
// that never ask for metrics pay one predictable branch per site.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/json.h"

// PW_METRICS_ENABLED=1 is injected by CMake when -DPW_METRICS=ON (the
// default). A TU can define PW_OBS_FORCE_OFF before including this
// header to get the OFF expansion regardless of the build (the no-op
// macro test does).
#if !defined(PW_OBS_FORCE_OFF) && defined(PW_METRICS_ENABLED) && \
    PW_METRICS_ENABLED
#define PW_OBS_ON 1
#else
#define PW_OBS_ON 0
#endif

namespace politewifi::obs {

// The counter catalogue: X(symbol, "name", "unit", "what it witnesses").
// Names are dotted `<layer>.<subsystem>.<what>`; OBSERVABILITY.md lists
// every entry (a test diffs the doc against this table).
#define PW_OBS_COUNTER_LIST(X)                                                \
  X(kSchedulerEventsExecuted, "sim.scheduler.events_executed", "events",      \
    "callbacks popped and run by the event loop")                             \
  X(kSchedulerEventsCancelled, "sim.scheduler.events_cancelled", "events",    \
    "events tombstoned by Scheduler::cancel")                                 \
  X(kSchedulerCompactions, "sim.scheduler.compactions", "sweeps",             \
    "O(n) tombstone sweeps (cancel churn exceeded half the heap)")            \
  X(kMediumTransmissions, "sim.medium.transmissions", "ppdus",                \
    "PPDUs put on the air")                                                   \
  X(kMediumFanoutCandidates, "sim.medium.fanout_candidates", "radios",        \
    "radios visited during transmission fan-out")                             \
  X(kMediumReceptions, "sim.medium.receptions", "receptions",                 \
    "receptions actually created (candidates above detect threshold)")        \
  X(kMediumDeliveryEvents, "sim.medium.delivery_events", "events",            \
    "delivery events scheduled (batched fan-out folds same-time arrivals)")   \
  X(kMediumLinkCacheHits, "sim.medium.link_cache_hits", "lookups",            \
    "link-budget memo hits")                                                  \
  X(kMediumLinkCacheMisses, "sim.medium.link_cache_misses", "lookups",        \
    "link-budget memo misses (full path-loss + shadowing recompute)")         \
  X(kMediumLinkCacheEvictions, "sim.medium.link_cache_evictions", "lines",    \
    "valid link-cache lines overwritten by a colliding link (thrash)")        \
  X(kMediumFerCacheHits, "sim.medium.fer_cache_hits", "lookups",              \
    "frame-error-rate memo hits")                                             \
  X(kMediumFerCacheMisses, "sim.medium.fer_cache_misses", "lookups",          \
    "frame-error-rate memo misses (erfc/pow chain runs)")                     \
  X(kMediumPpduBytesCopied, "sim.medium.ppdu_bytes_copied", "octets",         \
    "payload octets copied post-transmit (copy-on-corrupt only)")             \
  X(kMediumFadingAdvances, "sim.medium.fading_advances", "samples",           \
    "AR(1) fading samples drawn (stationary restarts + chain steps)")         \
  X(kMediumFadingCacheHits, "sim.medium.fading_cache_hits", "lookups",        \
    "fading evaluations served from a link's cached chain position")          \
  X(kPpduPoolReuses, "sim.ppdu_pool.reuses", "buffers",                       \
    "PPDU buffers recycled from the pool free list")                          \
  X(kPpduPoolAllocations, "sim.ppdu_pool.allocations", "buffers",             \
    "PPDU buffers heap-allocated (pool cold or pooling off)")                 \
  X(kRadioStateTransitions, "sim.radio.state_transitions", "transitions",     \
    "radio power-state changes metered by EnergyMeter")                       \
  X(kSweepJobs, "sim.sweep.jobs", "jobs",                                     \
    "sweep points executed by SweepRunner workers")                           \
  X(kShardHandoffs, "sim.shard.handoffs", "migrations",                       \
    "mobile radios migrated to another shard at a cell-exit horizon")         \
  X(kShardMirroredTx, "sim.shard.mirrored_tx", "ppdus",                       \
    "transmissions whose fan-out crossed a shard border (deliveries "         \
    "mirrored into a foreign shard's event stream)")                          \
  X(kShardSyncStalls, "sim.shard.sync_stalls", "switches",                    \
    "conservative-sync shard switches in the executor's merge loop")          \
  X(kMacAcksSent, "mac.acks_sent", "frames",                                  \
    "ACKs elicited at SIFS (the paper's core effect)")                        \
  X(kMacDedupEvictions, "mac.dedup_evictions", "entries",                     \
    "LRU evictions from the receive dedup cache")                             \
  X(kMacRetries, "mac.retries", "frames",                                     \
    "DCF retransmission attempts (retry bit set)")                            \
  X(kPhyFerDraws, "phy.fer_draws", "draws",                                   \
    "frame-error-rate computations at the PHY")                               \
  X(kRuntimeSubseedsDerived, "runtime.subseeds_derived", "seeds",             \
    "sub-seeds derived from the run seed (labels + sweep indices)")           \
  X(kRuntimeSimsBuilt, "runtime.sims_built", "simulations",                   \
    "Simulations constructed through RunContext::make_sim")                   \
  X(kCampaignJobsCompleted, "runtime.campaign.jobs_completed", "jobs",        \
    "campaign jobs whose document was journaled to results.jsonl")            \
  X(kCampaignJobsRetried, "runtime.campaign.jobs_retried", "attempts",        \
    "campaign job attempts re-dispatched after a crash, timeout or "          \
    "missing document")                                                       \
  X(kCampaignJobsQuarantined, "runtime.campaign.jobs_quarantined", "jobs",    \
    "campaign jobs quarantined after exhausting the retry budget")

// Gauges merge by max, so they record deterministic high-water marks.
#define PW_OBS_GAUGE_LIST(X)                                                  \
  X(kSchedulerPoolSlotsPeak, "sim.scheduler.pool_slots_peak", "slots",        \
    "peak event-pool size (live + free slots)")                               \
  X(kSchedulerTombstonesPeak, "sim.scheduler.tombstones_peak", "events",      \
    "peak cancelled-but-unreclaimed events in the heap")                      \
  X(kMediumRadiosPeak, "sim.medium.radios_peak", "radios",                    \
    "peak radios attached to one medium")                                     \
  X(kMediumLinkCacheGeneration, "sim.medium.link_cache_generation",           \
    "generations",                                                            \
    "link/FER cache (re)allocations — growth drops the old contents")         \
  X(kMediumFadingLinksPeak, "sim.medium.fading_links_peak", "links",          \
    "peak links holding live AR(1) fading state across all shards")           \
  X(kShardSkewNs, "sim.shard.skew_ns", "ns",                                  \
    "peak spread between shard head-event times at an executor switch")       \
  X(kCampaignQueueDepthPeak, "runtime.campaign.queue_depth_peak", "jobs",     \
    "peak queued-but-undispatched jobs in one campaign invocation")

enum class Counter : std::uint16_t {
#define PW_OBS_X(sym, name, unit, desc) sym,
  PW_OBS_COUNTER_LIST(PW_OBS_X)
#undef PW_OBS_X
      kCount,
};

enum class Gauge : std::uint16_t {
#define PW_OBS_X(sym, name, unit, desc) sym,
  PW_OBS_GAUGE_LIST(PW_OBS_X)
#undef PW_OBS_X
      kCount,
};

/// Histograms carry fixed integer bucket edges (values are integers —
/// octets, parts-per-million, nanoseconds — so bucketing never touches
/// floating point). `wall` flags real-time-valued histograms, which the
/// canonical metrics block excludes.
enum class Hist : std::uint16_t {
  kPhyFerPpm,             // FER per draw, parts-per-million
  kMacTxOctets,           // transmitted MPDU sizes
  kRuntimeExperimentWallNs,  // wall: one experiment run
  kSweepJobWallNs,           // wall: one sweep point
  kCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kNumGauges =
    static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount);

struct MetricInfo {
  const char* name;
  const char* unit;
  const char* description;
};

struct HistInfo {
  const char* name;
  const char* unit;
  const char* description;
  /// Ascending upper bucket bounds; bucket i counts values v with
  /// edges[i-1] < v <= edges[i], plus one trailing overflow bucket.
  std::span<const std::int64_t> edges;
  bool wall;  // real-time valued: excluded from the canonical block
};

std::span<const MetricInfo> counter_catalog();
std::span<const MetricInfo> gauge_catalog();
std::span<const HistInfo> hist_catalog();

const MetricInfo& counter_info(Counter c);
const MetricInfo& gauge_info(Gauge g);
const HistInfo& hist_info(Hist h);

/// The process-wide registry. All storage is static so the hot-path add
/// is one array index + one relaxed atomic op, with no singleton load.
///
/// Concurrency: every cell is a std::atomic updated with relaxed
/// ordering — the counters are commutative, so no mutex (and hence no
/// PW_GUARDED_BY capability) exists here by design; -Wthread-safety
/// verifies atomics' data-race freedom comes from the type, not from
/// annotations. The one non-atomic phase is reset(), whose "no
/// instrumented threads running" precondition is a call-phasing
/// contract (documented above it) checked by the TSan CI job rather
/// than by the static analysis.
class Registry {
 public:
  /// Edges per histogram are bounded so the cells are fixed arrays.
  static constexpr std::size_t kMaxHistEdges = 15;

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Turns collection on/off. Callers (the runtime, benches, tests)
  /// normally reset() first so the window is well-defined.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  /// Zeroes every cell. Must not race instrumented threads; the runtime
  /// only calls it between runs, after SweepRunner workers have joined.
  static void reset();

  static void count(Counter c, std::int64_t n) {
    if (!enabled()) return;
    counters_[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }
  static void gauge_max(Gauge g, std::int64_t v) {
    if (!enabled()) return;
    std::atomic<std::int64_t>& cell = gauges_[static_cast<std::size_t>(g)];
    std::int64_t prev = cell.load(std::memory_order_relaxed);
    while (v > prev &&
           !cell.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  static void record(Hist h, std::int64_t v);

  // Collected values (tests and the JSON writer).
  static std::int64_t counter_value(Counter c);
  static std::int64_t gauge_value(Gauge g);
  static std::int64_t hist_bucket(Hist h, std::size_t bucket);
  static std::int64_t hist_total(Hist h);
  static std::int64_t hist_sum(Hist h);

  /// The canonical metrics block: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with every catalogued name present and wall
  /// histograms excluded. Byte-identical across PW_THREADS.
  static common::Json to_json() { return to_json(/*include_wall=*/false); }
  /// `include_wall=true` adds the wall histograms — diagnostics only,
  /// never golden-gated.
  static common::Json to_json(bool include_wall);

 private:
  struct HistCells {
    std::atomic<std::int64_t> buckets[kMaxHistEdges + 1];
    std::atomic<std::int64_t> sum;
  };

  static std::atomic<bool> enabled_;
  static std::atomic<std::int64_t> counters_[kNumCounters];
  static std::atomic<std::int64_t> gauges_[kNumGauges];
  static HistCells hists_[kNumHists];
};

/// RAII wall-clock span: on destruction feeds its (wall-flagged)
/// histogram and, when a timeline is active, emits a real-time span
/// into the trace. This is the only sanctioned wall-clock read in the
/// instrumented layers — pw_lint's `direct-timing` rule keeps raw
/// std::chrono timing out of sim/mac/phy/runtime so every measurement
/// routes through here (and therefore stays out of canonical output).
class ScopedTimer {
 public:
  ScopedTimer(Hist h, const char* span_name)
      : hist_(h),
        name_(span_name),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Hist hist_;
  const char* name_;  // static string (trace label)
  std::chrono::steady_clock::time_point start_;
};

}  // namespace politewifi::obs

#define PW_OBS_CAT2(a, b) a##b
#define PW_OBS_CAT(a, b) PW_OBS_CAT2(a, b)

#if PW_OBS_ON
/// Bumps a catalogued counter by 1 / by `n`.
#define PW_COUNT(sym) \
  ::politewifi::obs::Registry::count(::politewifi::obs::Counter::sym, 1)
#define PW_COUNT_N(sym, n)                                           \
  ::politewifi::obs::Registry::count(::politewifi::obs::Counter::sym, \
                                     static_cast<std::int64_t>(n))
/// Raises a high-water-mark gauge to at least `v`.
#define PW_GAUGE_MAX(sym, v)                                             \
  ::politewifi::obs::Registry::gauge_max(::politewifi::obs::Gauge::sym, \
                                         static_cast<std::int64_t>(v))
/// Records one integer sample into a catalogued histogram.
#define PW_HIST(sym, v)                                              \
  ::politewifi::obs::Registry::record(::politewifi::obs::Hist::sym, \
                                      static_cast<std::int64_t>(v))
/// Times the enclosing scope (wall clock) into a wall-flagged histogram
/// and, when a timeline is active, a trace span named `span_name`.
#define PW_TIMEIT(sym, span_name)                                       \
  ::politewifi::obs::ScopedTimer PW_OBS_CAT(pw_obs_timer_, __LINE__)( \
      ::politewifi::obs::Hist::sym, (span_name))
#else
#define PW_COUNT(sym) ((void)0)
#define PW_COUNT_N(sym, n) ((void)0)
#define PW_GAUGE_MAX(sym, v) ((void)0)
#define PW_HIST(sym, v) ((void)0)
#define PW_TIMEIT(sym, span_name) ((void)0)
#endif
