#include "obs/timeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace politewifi::obs {

namespace {

std::atomic<TimelineProfiler*> g_active_timeline{nullptr};
std::atomic<std::int64_t> g_next_group{1};
std::atomic<std::int64_t> g_next_thread_ordinal{0};

/// Wall timestamps are reported relative to the first span of the
/// process, keeping trace numbers small and origin-free.
std::int64_t wall_now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::int64_t thread_ordinal() {
  thread_local const std::int64_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

TimelineProfiler* active_timeline() {
  return g_active_timeline.load(std::memory_order_acquire);
}

void set_active_timeline(TimelineProfiler* timeline) {
  g_active_timeline.store(timeline, std::memory_order_release);
}

std::int64_t allocate_timeline_group() {
  return g_next_group.fetch_add(1, std::memory_order_relaxed);
}

void TimelineProfiler::push(const Span& span) {
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  spans_.push_back(span);
}

void TimelineProfiler::add_sim_span(const char* name, std::int64_t pid,
                                    std::int64_t tid, std::int64_t ts_ns,
                                    std::int64_t dur_ns) {
  // pw-analyze: allow(hot-lock): timeline hooks only run while a
  // profiler is installed (pw_run --timeline); benched and golden-gated
  // paths run with no profiler, so the hot fan-out never reaches this
  // lock in a measured configuration (see the header: traces are
  // diagnostics, exempt from the determinism rules).
  common::MutexLock lock(mutex_);
  push(Span{name, pid, tid, ts_ns, dur_ns});
}

void TimelineProfiler::add_wall_span(const char* name, std::int64_t dur_ns) {
  const std::int64_t end_ns = wall_now_ns();
  common::MutexLock lock(mutex_);
  push(Span{name, kWallPid, thread_ordinal(),
            std::max<std::int64_t>(0, end_ns - dur_ns), dur_ns});
}

std::size_t TimelineProfiler::size() const {
  common::MutexLock lock(mutex_);
  return spans_.size();
}

std::size_t TimelineProfiler::dropped() const {
  common::MutexLock lock(mutex_);
  return dropped_;
}

common::Json TimelineProfiler::to_json() const {
  common::MutexLock lock(mutex_);
  common::Json events = common::Json::array();
  // Track which pids appear so each gets a process_name metadata row.
  std::vector<std::int64_t> pids;
  for (const Span& span : spans_) {
    common::Json e = common::Json::object();
    e["name"] = span.name;
    e["cat"] = span.pid == kWallPid ? "wall" : "radio";
    e["ph"] = "X";
    e["pid"] = span.pid;
    e["tid"] = span.tid;
    e["ts"] = double(span.ts_ns) / 1000.0;   // Chrome wants microseconds
    e["dur"] = double(span.dur_ns) / 1000.0;
    events.push_back(std::move(e));
    if (std::find(pids.begin(), pids.end(), span.pid) == pids.end()) {
      pids.push_back(span.pid);
    }
  }
  std::sort(pids.begin(), pids.end());
  for (const std::int64_t pid : pids) {
    common::Json meta = common::Json::object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = pid;
    common::Json args = common::Json::object();
    args["name"] = pid == kWallPid
                       ? std::string("workers (wall clock)")
                       : "radios (sim time, medium " + std::to_string(pid) +
                             ")";
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  common::Json doc = common::Json::object();
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = std::move(events);
  if (dropped_ > 0) {
    doc["droppedSpans"] = static_cast<std::int64_t>(dropped_);
  }
  return doc;
}

bool TimelineProfiler::write_file(const std::string& path,
                                  std::string* error) const {
  const std::string text = to_json().dump() + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  if (!ok && error != nullptr) *error = "short write: " + path;
  return ok;
}

}  // namespace politewifi::obs
