#include "obs/metrics.h"

#include "common/check.h"
#include "obs/timeline.h"

namespace politewifi::obs {

namespace {

constexpr MetricInfo kCounterInfo[] = {
#define PW_OBS_X(sym, name, unit, desc) {name, unit, desc},
    PW_OBS_COUNTER_LIST(PW_OBS_X)
#undef PW_OBS_X
};
static_assert(std::size(kCounterInfo) == kNumCounters);

constexpr MetricInfo kGaugeInfo[] = {
#define PW_OBS_X(sym, name, unit, desc) {name, unit, desc},
    PW_OBS_GAUGE_LIST(PW_OBS_X)
#undef PW_OBS_X
};
static_assert(std::size(kGaugeInfo) == kNumGauges);

// Histogram edges. Integer-valued domains keep bucketing (and therefore
// the canonical block) free of floating point.
constexpr std::int64_t kFerPpmEdges[] = {0,     1,      10,      100,
                                         1000,  10000,  100000,  1000000};
constexpr std::int64_t kTxOctetEdges[] = {16, 32, 64, 128, 256, 512, 1024,
                                          2048};
// Wall spans: 1 ms .. 10 min, decade-ish steps.
constexpr std::int64_t kWallNsEdges[] = {
    1'000'000,      10'000'000,     100'000'000,   1'000'000'000,
    10'000'000'000, 60'000'000'000, 600'000'000'000};

constexpr HistInfo kHistInfo[] = {
    {"phy.fer_ppm", "ppm",
     "frame-error rate per draw, parts-per-million (1e6 = certain loss)",
     kFerPpmEdges, /*wall=*/false},
    {"mac.tx_octets", "octets", "MPDU sizes handed to the transmit pipeline",
     kTxOctetEdges, /*wall=*/false},
    {"runtime.experiment_wall_ns", "ns",
     "wall time of one experiment run (wall: canonical block excludes it)",
     kWallNsEdges, /*wall=*/true},
    {"sim.sweep.job_wall_ns", "ns",
     "wall time of one sweep point (wall: canonical block excludes it)",
     kWallNsEdges, /*wall=*/true},
};
static_assert(std::size(kHistInfo) == kNumHists);

}  // namespace

std::span<const MetricInfo> counter_catalog() { return kCounterInfo; }
std::span<const MetricInfo> gauge_catalog() { return kGaugeInfo; }
std::span<const HistInfo> hist_catalog() { return kHistInfo; }

const MetricInfo& counter_info(Counter c) {
  PW_CHECK(c < Counter::kCount);
  return kCounterInfo[static_cast<std::size_t>(c)];
}

const MetricInfo& gauge_info(Gauge g) {
  PW_CHECK(g < Gauge::kCount);
  return kGaugeInfo[static_cast<std::size_t>(g)];
}

const HistInfo& hist_info(Hist h) {
  PW_CHECK(h < Hist::kCount);
  return kHistInfo[static_cast<std::size_t>(h)];
}

std::atomic<bool> Registry::enabled_{false};
std::atomic<std::int64_t> Registry::counters_[kNumCounters] = {};
std::atomic<std::int64_t> Registry::gauges_[kNumGauges] = {};
Registry::HistCells Registry::hists_[kNumHists] = {};

void Registry::reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (auto& h : hists_) {
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
  }
}

void Registry::record(Hist h, std::int64_t v) {
  if (!enabled()) return;
  const HistInfo& info = kHistInfo[static_cast<std::size_t>(h)];
  std::size_t bucket = info.edges.size();  // overflow unless an edge holds v
  for (std::size_t i = 0; i < info.edges.size(); ++i) {
    if (v <= info.edges[i]) {
      bucket = i;
      break;
    }
  }
  HistCells& cells = hists_[static_cast<std::size_t>(h)];
  cells.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cells.sum.fetch_add(v, std::memory_order_relaxed);
}

std::int64_t Registry::counter_value(Counter c) {
  return counters_[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

std::int64_t Registry::gauge_value(Gauge g) {
  return gauges_[static_cast<std::size_t>(g)].load(std::memory_order_relaxed);
}

std::int64_t Registry::hist_bucket(Hist h, std::size_t bucket) {
  const HistInfo& info = kHistInfo[static_cast<std::size_t>(h)];
  PW_CHECK(bucket <= info.edges.size());
  return hists_[static_cast<std::size_t>(h)].buckets[bucket].load(
      std::memory_order_relaxed);
}

std::int64_t Registry::hist_total(Hist h) {
  const HistInfo& info = kHistInfo[static_cast<std::size_t>(h)];
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= info.edges.size(); ++i) {
    total += hist_bucket(h, i);
  }
  return total;
}

std::int64_t Registry::hist_sum(Hist h) {
  return hists_[static_cast<std::size_t>(h)].sum.load(
      std::memory_order_relaxed);
}

common::Json Registry::to_json(bool include_wall) {
  common::Json counters = common::Json::object();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    counters[kCounterInfo[i].name] = counter_value(static_cast<Counter>(i));
  }
  common::Json gauges = common::Json::object();
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    gauges[kGaugeInfo[i].name] = gauge_value(static_cast<Gauge>(i));
  }
  common::Json hists = common::Json::object();
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const HistInfo& info = kHistInfo[i];
    if (info.wall && !include_wall) continue;
    const Hist h = static_cast<Hist>(i);
    common::Json edges = common::Json::array();
    common::Json counts = common::Json::array();
    for (std::size_t b = 0; b < info.edges.size(); ++b) {
      edges.push_back(info.edges[b]);
      counts.push_back(hist_bucket(h, b));
    }
    counts.push_back(hist_bucket(h, info.edges.size()));  // overflow
    common::Json one = common::Json::object();
    one["counts"] = std::move(counts);
    one["edges"] = std::move(edges);
    one["sum"] = hist_sum(h);
    one["total"] = hist_total(h);
    hists[info.name] = std::move(one);
  }
  common::Json out = common::Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(hists);
  return out;
}

ScopedTimer::~ScopedTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  Registry::record(hist_, ns);
  if (TimelineProfiler* timeline = active_timeline()) {
    timeline->add_wall_span(name_, ns);
  }
}

}  // namespace politewifi::obs
