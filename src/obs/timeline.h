// TimelineProfiler: Chrome-tracing / Perfetto trace emission.
//
// Two kinds of spans share one trace so a run renders visually:
//
//   - *Sim-time* spans: one track per radio (pid = the owning medium's
//     timeline group, tid = the radio id), one complete ("ph":"X") event
//     per radio power-state dwell. A battery-drain run opened in
//     Perfetto shows the paper's Figure 6 duty cycle directly.
//   - *Wall-time* spans: PW_TIMEIT scopes (experiment runs, sweep
//     points) on per-thread tracks under the reserved pid 0.
//
// The trace is diagnostics, not a result: span order, wall timestamps
// and group numbering depend on thread scheduling, so timelines are
// never golden-gated and never enter the canonical JSON document (the
// determinism rules live in OBSERVABILITY.md). That freedom is why the
// hooks may use atomics and the host clock.
//
// The profiler is installed process-wide (`set_active_timeline`) by
// whoever wants a trace — `pw_run --timeline`, a test — and every hook
// is a no-op while none is installed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/json.h"
#include "common/mutex.h"

namespace politewifi::obs {

class TimelineProfiler {
 public:
  /// Spans kept per trace; beyond this they are counted as dropped
  /// rather than growing without bound (city-scale runs emit millions
  /// of state changes).
  static constexpr std::size_t kMaxSpans = 1u << 20;

  /// Reserved pid for wall-clock (PW_TIMEIT) tracks; sim groups start
  /// at 1 (allocate_timeline_group).
  static constexpr std::int64_t kWallPid = 0;

  /// One radio power-state dwell in simulated time. `name` must point
  /// at a static string (state names are).
  void add_sim_span(const char* name, std::int64_t pid, std::int64_t tid,
                    std::int64_t ts_ns, std::int64_t dur_ns);

  /// One wall-clock scope ending now, `dur_ns` long; the track is the
  /// calling thread's.
  void add_wall_span(const char* name, std::int64_t dur_ns);

  std::size_t size() const;
  std::size_t dropped() const;

  /// Chrome trace-event JSON: {"displayTimeUnit": "ms", "traceEvents":
  /// [...]} — loadable by chrome://tracing and ui.perfetto.dev.
  /// Timestamps are microseconds (sim spans: simulated time; wall
  /// spans: host time since the profiler's first use).
  common::Json to_json() const;

  /// to_json() written canonically to `path`; false (with *error) on
  /// I/O failure.
  bool write_file(const std::string& path, std::string* error) const;

 private:
  struct Span {
    const char* name;
    std::int64_t pid;
    std::int64_t tid;
    std::int64_t ts_ns;
    std::int64_t dur_ns;
  };

  void push(const Span& span) PW_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  std::vector<Span> spans_ PW_GUARDED_BY(mutex_);
  std::size_t dropped_ PW_GUARDED_BY(mutex_) = 0;
};

/// The installed profiler, or nullptr (hooks disabled). Installation is
/// not reference-counted: the runtime installs around one run at a time.
TimelineProfiler* active_timeline();
void set_active_timeline(TimelineProfiler* timeline);

/// Process-unique pid for one medium's radio tracks (>= 1; pid 0 is the
/// wall-clock group). Monotonic across the process — uniqueness is all
/// the trace needs, so concurrent sweep simulations may interleave.
std::int64_t allocate_timeline_group();

}  // namespace politewifi::obs
