// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper and
// prints paper-vs-measured rows. They are runnable standalone:
//   for b in build/bench/*; do $b; done
//
// Every bench also reports engine throughput (events/sec, simulated-time
// over wall-time) and emits a machine-readable BENCH_<name>.json via
// PerfReport — which lives in src/runtime/perf_report.h since the
// experiment runtime and the benches share one canonical JSON writer.
// The JSONs land at the repo root (PW_BENCH_DEFAULT_DIR, baked in by
// CMake) where they are committed; tools/bench_compare.py diffs a fresh
// run against the committed baselines and the bench-regression CI job
// gates on it. Set PW_BENCH_DIR to redirect where the JSON lands (e.g.
// CI scratch).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "runtime/perf_report.h"

namespace politewifi::bench {

using PerfReport = runtime::PerfReport;

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Reads a scale override from the environment (PW_SCALE), used by the
/// expensive benches to allow quick runs: PW_SCALE=0.05 bench_table2...
inline double env_scale(double default_scale) {
  if (const char* s = std::getenv("PW_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return default_scale;
}

inline void kv(const char* key, const std::string& value) {
  std::printf("  %-44s %s\n", key, value.c_str());
}

inline void kvf(const char* key, const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, value);
  kv(key, buf);
}

/// Paper-vs-measured comparison row.
inline void compare(const char* what, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-36s paper: %-18s measured: %s\n", what, paper.c_str(),
              measured.c_str());
}

}  // namespace politewifi::bench
