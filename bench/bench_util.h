// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure from the paper and
// prints paper-vs-measured rows. They are runnable standalone:
//   for b in build/bench/*; do $b; done
//
// Every bench also reports engine throughput (events/sec, simulated-time
// over wall-time) and emits a machine-readable BENCH_<name>.json via
// PerfReport, so the perf trajectory is tracked PR over PR. The JSONs
// land at the repo root (PW_BENCH_DEFAULT_DIR, baked in by CMake) where
// they are committed; tools/bench_compare.py diffs a fresh run against
// the committed baselines and the bench-regression CI job gates on it.
// Set PW_BENCH_DIR to redirect where the JSON lands (e.g. CI scratch).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "sim/event_queue.h"

namespace politewifi::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Reads a scale override from the environment (PW_SCALE), used by the
/// expensive benches to allow quick runs: PW_SCALE=0.05 bench_table2...
inline double env_scale(double default_scale) {
  if (const char* s = std::getenv("PW_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return default_scale;
}

inline void kv(const char* key, const std::string& value) {
  std::printf("  %-44s %s\n", key, value.c_str());
}

inline void kvf(const char* key, const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, value);
  kv(key, buf);
}

/// Paper-vs-measured comparison row.
inline void compare(const char* what, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-36s paper: %-18s measured: %s\n", what, paper.c_str(),
              measured.c_str());
}

/// Engine throughput accounting for one bench run.
///
/// Construct it first thing in main (starts the wall clock), feed it every
/// scheduler the bench drives (or aggregate counts from sweep workers),
/// then call finish() last: it prints an "engine" section and writes
/// BENCH_<name>.json with wall time, events executed and events/sec.
class PerfReport {
 public:
  explicit PerfReport(std::string name)
      : name_(std::move(name)), wall_start_(std::chrono::steady_clock::now()) {}

  ~PerfReport() {
    if (!finished_) finish();
  }

  PerfReport(const PerfReport&) = delete;
  PerfReport& operator=(const PerfReport&) = delete;

  /// Accumulates a finished scheduler's event count and simulated span.
  void add_scheduler(const sim::Scheduler& scheduler) {
    add_events(scheduler.events_executed(),
               scheduler.now() - kSimStart);
  }

  /// Aggregation hook for sweep workers: each independent simulation
  /// reports its own totals.
  void add_events(std::uint64_t events, Duration simulated) {
    events_ += events;
    sim_seconds_ += to_seconds(simulated);
  }

  /// Extra numeric facts worth tracking (scale, thread count, ...).
  void note(const std::string& key, double value) {
    extras_.emplace_back(key, value);
  }

  double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start_)
        .count();
  }

  std::uint64_t events() const { return events_; }

  /// Prints the engine section and writes BENCH_<name>.json. Idempotent.
  void finish() {
    if (finished_) return;
    finished_ = true;
    const double wall_s = wall_seconds();
    const double eps = wall_s > 0.0 ? double(events_) / wall_s : 0.0;
    const double ratio = wall_s > 0.0 ? sim_seconds_ / wall_s : 0.0;

    section("engine");
    kvf("wall time (s)", "%.3f", wall_s);
    kvf("events executed", "%.0f", double(events_));
    kvf("events/sec", "%.0f", eps);
    kvf("simulated seconds", "%.2f", sim_seconds_);
    kvf("sim-time / wall-time", "%.2f", ratio);

    const char* dir = std::getenv("PW_BENCH_DIR");
#ifdef PW_BENCH_DEFAULT_DIR
    const std::string base(dir != nullptr ? dir : PW_BENCH_DEFAULT_DIR);
#else
    const std::string base(dir != nullptr ? dir : "");
#endif
    const std::string path =
        (base.empty() ? std::string() : base + "/") + "BENCH_" + name_ +
        ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"%s\",\n"
                   "  \"wall_time_s\": %.6f,\n"
                   "  \"events_executed\": %llu,\n"
                   "  \"events_per_sec\": %.1f,\n"
                   "  \"sim_time_s\": %.6f,\n"
                   "  \"sim_wall_ratio\": %.3f",
                   name_.c_str(), wall_s,
                   static_cast<unsigned long long>(events_), eps, sim_seconds_,
                   ratio);
      for (const auto& [key, value] : extras_) {
        std::fprintf(f, ",\n  \"%s\": %.6f", key.c_str(), value);
      }
      std::fprintf(f, "\n}\n");
      std::fclose(f);
      kv("perf json", path);
    } else {
      kv("perf json", "UNWRITABLE: " + path);
    }
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t events_ = 0;
  double sim_seconds_ = 0.0;
  std::vector<std::pair<std::string, double>> extras_;
  bool finished_ = false;
};

}  // namespace politewifi::bench
