// §4.3 "New Opportunities for WiFi Sensing" — single-device sensing.
//
// An IoT hub (software-modified on ONE device only) streams fake frames
// at two unmodified neighbour devices — a smart TV and a thermostat —
// and senses the home from the CSI of their ACKs:
//   - motion events (the paper's "sharp changes at times 9 and 32"),
//   - occupancy detection per zone,
//   - breathing-rate estimation of a sleeping occupant (§4.1's open
//     question answered constructively).
#include "bench_util.h"
#include "core/csi_collector.h"
#include "sim/network.h"
#include "scenario/sensing_scene.h"
#include "sensing/activity.h"
#include "sensing/vitals.h"

using namespace politewifi;

int main() {
  bench::PerfReport perf("sensing_opportunity");
  bench::header("Sensing opportunity (§4.3)",
                "one modified device senses via neighbours' ACKs");

  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 43});

  // Unmodified victims: just WiFi devices being themselves.
  sim::RadioConfig rc;
  rc.position = {6, 0};
  sim::Device& tv = sim.add_device(
      {.name = "smart-tv", .vendor = "Samsung", .kind = sim::DeviceKind::kIot},
      {0x8c, 0x77, 0x12, 0x01, 0x02, 0x03}, rc);
  rc.position = {0, 7};
  sim::Device& thermostat = sim.add_device(
      {.name = "thermostat", .vendor = "ecobee", .kind = sim::DeviceKind::kIot},
      {0x44, 0x61, 0x32, 0x04, 0x05, 0x06}, rc);

  // The hub: the only device running our software.
  rc.position = {0, 0};
  rc.capture_csi = true;
  sim::Device& hub = sim.add_device(
      {.name = "iot-hub", .kind = sim::DeviceKind::kSniffer},
      {0x02, 0x0a, 0xc4, 0x0a, 0x0b, 0x0c}, rc);

  // Living room (TV zone): person walks through at t~9 s and t~32 s.
  scenario::BodyMotionModel living_room({.seed = 91});
  living_room.add_phase(scenario::Activity::kStill, seconds(9));
  living_room.add_phase(scenario::Activity::kWalking, seconds(3));
  living_room.add_phase(scenario::Activity::kStill, seconds(20));
  living_room.add_phase(scenario::Activity::kWalking, seconds(3));
  living_room.add_phase(scenario::Activity::kStill, seconds(10));

  // Bedroom (thermostat zone): someone asleep, breathing at 14 bpm.
  scenario::BodyMotionModel bedroom({.breathing_bpm = 14.0, .seed = 92});
  bedroom.add_phase(scenario::Activity::kBreathing, seconds(95));

  scenario::install_body_csi_multi(
      sim.medium(),
      {{&tv.radio(), &living_room}, {&thermostat.radio(), &bedroom}},
      hub.radio(), sim.now());

  // Two collectors, one per sensed neighbour, interleaved streams.
  core::CsiCollector tv_collector(hub, tv.address());
  // NOTE: a single physical hub can only host one MonitorHub; the second
  // collector shares the same station via its own hub instance would
  // steal the sniffer. Collect sequentially instead, as a duty-cycled
  // hub would.
  tv_collector.start(100.0);
  sim.run_for(seconds(45));
  tv_collector.stop();

  core::CsiCollector th_collector(hub, thermostat.address());
  th_collector.start(50.0);  // breathing needs far less bandwidth
  sim.run_for(seconds(45));
  th_collector.stop();

  bench::section("collection (software modified on hub ONLY)");
  bench::kvf("TV zone CSI samples", "%.0f",
             double(tv_collector.samples().size()));
  bench::kvf("bedroom CSI samples", "%.0f",
             double(th_collector.samples().size()));
  bench::kvf("TV ACKs sent (unmodified device)", "%.0f",
             double(tv.station().stats().acks_sent));
  bench::kvf("thermostat ACKs sent (unmodified device)", "%.0f",
             double(thermostat.station().stats().acks_sent));

  // Motion events in the living room.
  const auto tv_series =
      sensing::resample_amplitude(tv_collector.samples(), 17, 100.0);
  sensing::ActivityDetector detector;
  const auto events = detector.motion_events(tv_series);

  bench::section("living-room motion events (paper: t = 9 and 32 s)");
  for (const double t : events) {
    std::printf("  motion event at t = %.1f s\n", t - tv_series.t0_s);
  }

  // Occupancy per zone.
  const auto th_series =
      sensing::resample_amplitude(th_collector.samples(), 17, 50.0);
  const bool tv_occupied = sensing::detect_occupancy(tv_series);
  const bool bedroom_occupied = sensing::detect_occupancy(th_series);

  bench::section("occupancy");
  bench::kv("living room", tv_occupied ? "occupied (motion)" : "empty");
  bench::kv("bedroom", bedroom_occupied ? "occupied" : "empty");

  // Breathing in the bedroom — centimetre chest motion needs the most
  // responsive subcarrier, not a fixed one.
  const int best_sc = sensing::select_best_subcarrier(th_collector.samples());
  const auto breath_series =
      sensing::resample_amplitude(th_collector.samples(), best_sc, 50.0);
  const auto breathing = sensing::estimate_breathing(breath_series);
  bench::section("bedroom vital signs");
  bench::kvf("most responsive subcarrier", "%.0f", double(best_sc));
  if (breathing) {
    bench::kvf("estimated breathing rate (bpm)", "%.1f", breathing->rate_bpm);
    bench::kvf("ground truth (bpm)", "%.1f", 14.0);
    bench::kvf("confidence", "%.2f", breathing->confidence);
  } else {
    bench::kv("estimated breathing rate", "(none detected)");
  }

  bench::section("paper vs measured");
  const bool two_events =
      events.size() == 2 && std::abs(events[0] - tv_series.t0_s - 9.0) < 2.0 &&
      std::abs(events[1] - tv_series.t0_s - 32.0) < 2.0;
  bench::compare("sharp CSI changes at t=9, 32 s", "visible in Figure 5",
                 two_events ? "detected at the right times" : "NOT matched");
  bench::compare("devices modified", "one (the sensing device)", "one (hub)");
  const bool breathing_ok =
      breathing && std::abs(breathing->rate_bpm - 14.0) < 1.5;
  bench::compare("breathing-rate open question", "future work",
                 breathing_ok ? "answered: recovered to <1.5 bpm" : "missed");

  perf.add_scheduler(sim.scheduler());
  perf.finish();
  return (two_events && breathing_ok && tv_occupied) ? 0 : 1;
}
