// §4.2 battery-life projections: "the battery of the Logitech Circle 2
// and Blink XT2 security cameras are expected to drain in about 6.7 and
// 16.7 hours" under a 900 pps attack.
//
// Measures the attack power on the simulated ESP8266 victim, then runs
// the paper's arithmetic against both camera batteries — and contrasts
// it with their advertised unattacked lifetimes.
#include "bench_util.h"
#include "core/battery_attack.h"
#include "scenario/device_profiles.h"
#include "sim/network.h"

using namespace politewifi;

int main() {
  bench::PerfReport perf("battery_life");
  bench::header("Battery life", "camera drain projections under attack");

  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 42});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("home-ap", {0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03}, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  cc.power_save = true;
  cc.idle_timeout = milliseconds(100);
  cc.beacon_wake_window = milliseconds(1);
  sim::Device& victim = sim.add_client(
      "esp8266", {0x24, 0x0a, 0xc4, 0x01, 0x02, 0x03}, {4, 0}, cc);
  sim::RadioConfig rig;
  rig.position = {8, 2};
  sim::Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x04}, rig);
  sim.establish(victim, seconds(10));

  core::BatteryDrainAttack attack(sim, attacker, victim);
  const auto idle = attack.run(0.0, seconds(3), seconds(20));
  const auto attacked = attack.run(900.0, seconds(3), seconds(20));

  bench::section("measured victim power");
  bench::kvf("unattacked (mW)", "%.1f", idle.avg_power_mw);
  bench::kvf("under 900 pps attack (mW)", "%.1f", attacked.avg_power_mw);

  bench::section("projections (paper's arithmetic on measured power)");
  std::printf("  %-22s %-12s %-18s %-16s %-16s\n", "Camera", "Battery",
              "Advertised life", "Paper (hours)", "Measured (hours)");
  struct Case {
    scenario::CameraSpec spec;
    double paper_hours;
  };
  const Case cases[] = {{scenario::logitech_circle2(), 6.7},
                        {scenario::blink_xt2(), 16.7}};
  bool ok = true;
  for (const auto& c : cases) {
    const auto proj = core::project_drain(c.spec.name, c.spec.battery_mwh,
                                          attacked.avg_power_mw);
    std::printf("  %-22s %-12.0f %-18s %-16.1f %-16.1f\n",
                c.spec.name.c_str(), c.spec.battery_mwh,
                c.spec.advertised_life.c_str(), c.paper_hours,
                proj.hours_to_empty);
    // Shape check: within ~25% of the paper's projection.
    ok = ok && std::abs(proj.hours_to_empty - c.paper_hours) <
                   0.25 * c.paper_hours;
  }

  bench::section("summary");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.0fx", attacked.avg_power_mw /
                                              std::max(idle.avg_power_mw, 1e-9));
  bench::compare("power increase at 900 pps", "35x", buf);
  perf.add_scheduler(sim.scheduler());
  perf.finish();
  return ok ? 0 : 1;
}
