// Figure 6: "Sending fake frames to a WiFi device increases its power
// consumption significantly" — the battery-drain attack (§4.2).
//
// An ESP8266-class victim associates to an AP and uses 802.11 power save.
// The attacker sweeps its fake-frame rate and we measure the victim's
// mean power draw. Expected shape (the paper's):
//   - 0 pps: mostly asleep, ~10 mW
//   - >10 pps: the idle timer never expires, radio pinned on, ~230 mW
//   - growth linear in rate from per-frame RX + ACK-TX energy,
//     reaching ~360 mW at 900 pps (~35x the unattacked draw).
//
// Each rate point is a complete, independently-seeded simulation, so the
// sweep fans out across PW_THREADS workers (sim::SweepRunner). Results
// are bit-identical for any thread count.
#include "bench_util.h"
#include "core/battery_attack.h"
#include "sim/network.h"
#include "sim/sweep_runner.h"

using namespace politewifi;

namespace {

struct Point {
  core::BatteryAttackResult result;
  std::uint64_t events = 0;
  Duration simulated{};
};

/// One self-contained Figure 6 measurement: its own AP, victim, attacker
/// and scheduler. `rate` in fake frames per second.
Point measure_rate(double rate, Duration measure) {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 66});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("home-ap", {0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03}, {0, 0}, apc);

  mac::ClientConfig cc;
  cc.fast_keys = true;
  cc.power_save = true;
  cc.idle_timeout = milliseconds(100);
  cc.beacon_wake_window = milliseconds(1);
  sim::Device& victim = sim.add_client(
      "esp8266", {0x24, 0x0a, 0xc4, 0xaa, 0xbb, 0xcc}, {4, 0}, cc);

  sim::RadioConfig rig;
  rig.position = {8, 2};
  sim::Device& attacker = sim.add_device(
      {.name = "rtl8812au", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x03}, rig);

  sim.establish(victim, seconds(10));

  core::BatteryDrainAttack attack(sim, attacker, victim);
  Point p;
  p.result = attack.run(rate, seconds(3), measure);
  p.events = sim.scheduler().events_executed();
  p.simulated = sim.now() - kSimStart;
  return p;
}

}  // namespace

int main() {
  bench::PerfReport perf("fig6_power_vs_rate");
  bench::header("Figure 6", "victim power vs fake-frame rate");

  const double measure_s = bench::env_scale(1.0) >= 1.0 ? 30.0 : 8.0;
  const std::vector<double> rates{0,   1,   5,   10,  20,  50,  100,
                                  200, 300, 400, 500, 600, 700, 800, 900};

  const sim::SweepRunner runner;
  std::printf("  sweeping %zu rate points on %u thread(s)\n", rates.size(),
              runner.threads());
  const std::vector<Point> points = runner.run_indexed(
      rates.size(),
      [&](std::size_t i) { return measure_rate(rates[i], from_seconds(measure_s)); });

  bench::section("power vs rate (the Figure 6 series)");
  std::printf("  %-10s %-12s %-12s %-10s %-12s\n", "rate(pps)", "power(mW)",
              "sleep frac", "ACKs", "vs idle");
  double p0 = 0.0, p900 = 0.0, p_awake = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rate = rates[i];
    const auto& r = points[i].result;
    if (rate == 0) p0 = r.avg_power_mw;
    if (rate == 900) p900 = r.avg_power_mw;
    if (rate == 20) p_awake = r.avg_power_mw;
    std::printf("  %-10.0f %-12.1f %-12.2f %-10llu %.1fx\n", rate,
                r.avg_power_mw, r.sleep_fraction,
                static_cast<unsigned long long>(r.acks_elicited),
                r.avg_power_mw / std::max(p0, 1e-9));
    perf.add_events(points[i].events, points[i].simulated);
  }

  bench::section("paper vs measured");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f mW", p0);
  bench::compare("no attack", "~10 mW (mostly asleep)", buf);
  std::snprintf(buf, sizeof buf, "%.1f mW", p_awake);
  bench::compare(">10 pps", "~230 mW (radio always on)", buf);
  std::snprintf(buf, sizeof buf, "%.1f mW (%.0fx)", p900, p900 / p0);
  bench::compare("900 pps", "~360 mW (35x increase)", buf);

  const bool shape_ok = p0 < 40.0 && p_awake > 180.0 && p900 > 300.0 &&
                        p900 / p0 > 10.0;
  perf.note("threads", runner.threads());
  perf.note("rate_points", double(rates.size()));
  perf.finish();
  return shape_ok ? 0 : 1;
}
