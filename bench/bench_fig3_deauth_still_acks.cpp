// Figure 3: "The attacked access point detects that something strange is
// happening, however it still ACKs fake frames."
//
// An AP with the deauth-on-unknown quirk (the paper observed this on a
// Google Wifi AP) fires deauthentication bursts at the stranger — and its
// hardware keeps acknowledging the fake frames. A software blocklist of
// the attacker's MAC changes nothing ("this experiment destroyed the last
// hope of preventing this attack").
#include <iostream>

#include "bench_util.h"
#include "core/injector.h"
#include "sim/network.h"

using namespace politewifi;

int main() {
  bench::PerfReport perf("fig3_deauth_still_acks");
  bench::header("Figure 3", "deauthing AP still ACKs fake frames");

  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 3});
  auto& trace = sim.trace();
  trace.set_address_filter({MacAddress::paper_fake_address()});

  mac::ApConfig apc;
  apc.fast_keys = true;
  apc.deauth_unknown_senders = true;
  apc.deauth_burst = 3;  // the triplets visible in the paper's capture
  sim::Device& ap = sim.add_ap(
      "google-wifi", {0xf2, 0x6e, 0x0b, 0x44, 0x55, 0x66}, {0, 0}, apc);

  sim::RadioConfig rig;
  rig.position = {6, 0};
  sim::Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x02}, rig);
  core::FakeFrameInjector injector(attacker);

  // Phase 1: plain attack.
  constexpr int kPhase1 = 20;
  for (int i = 0; i < kPhase1; ++i) {
    injector.inject_one(ap.address());
    sim.run_for(milliseconds(80));
  }
  const auto acks_phase1 = ap.station().stats().acks_sent;
  const auto deauths_phase1 = ap.ap()->stats().deauths_sent;
  const std::size_t deauths_on_air = trace.count([](const sim::TraceEntry& e) {
    return e.parsed && e.frame.fc.is_deauth() &&
           e.frame.addr1 == MacAddress::paper_fake_address();
  });

  bench::section("packet list excerpt (deauth burst followed by ACK)");
  trace.dump(std::cout, 8);

  // Phase 2: operator blocklists the attacker's spoofed MAC in software.
  ap.ap()->block_mac(MacAddress::paper_fake_address());
  constexpr int kPhase2 = 20;
  for (int i = 0; i < kPhase2; ++i) {
    injector.inject_one(ap.address());
    sim.run_for(milliseconds(80));
  }
  const auto acks_phase2 = ap.station().stats().acks_sent - acks_phase1;

  bench::section("results");
  bench::compare(
      "AP sends deauths to the stranger", "yes (same-SN triplets)",
      deauths_phase1 > 0 && deauths_on_air == 3 * deauths_phase1
          ? "yes (" + std::to_string(deauths_phase1) +
                " deauths, each retried into a same-SN triplet)"
          : std::to_string(deauths_on_air) + " on air");
  bench::compare("AP still ACKs while deauthing", "yes (every fake)",
                 std::to_string(acks_phase1) + "/" + std::to_string(kPhase1));
  bench::compare("ACKs after MAC blocklisted", "yes (still every fake)",
                 std::to_string(acks_phase2) + "/" + std::to_string(kPhase2));
  bench::kvf("software drops of blocked frames", "%.0f",
             double(ap.ap()->stats().software_drops_blocked));

  const bool ok = acks_phase1 == kPhase1 && acks_phase2 == kPhase2 &&
                  deauths_phase1 > 0;
  perf.add_scheduler(sim.scheduler());
  perf.finish();
  return ok ? 0 : 1;
}
