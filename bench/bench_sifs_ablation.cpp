// §2.2 ablation: "Why is Polite WiFi not preventable?"
//
// Three parts:
//  1. google-benchmark measurement of this library's real software
//     AES-CCMP decode cost per frame size — the work a "validating
//     receiver" would have to finish before ACKing.
//  2. The timing argument: modeled hardware decode latency (calibrated to
//     the literature's 200-700 us) vs the SIFS budget (10/16 us).
//  3. A link ablation: the same WPA2 link run against a polite receiver
//     and against the hypothetical validating receiver. The validating
//     receiver correctly refuses to ACK fakes — and destroys the
//     legitimate link, because every real ACK is late.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/injector.h"
#include "crypto/wpa2.h"
#include "frames/data.h"
#include "sim/network.h"

using namespace politewifi;

namespace {

// --- Part 1: real software CCMP decode cost -----------------------------------

void BM_CcmpDecode(benchmark::State& state) {
  const std::size_t msdu_size = std::size_t(state.range(0));
  const crypto::Ptk ptk =
      crypto::derive_fast_ptk({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2});

  frames::Frame frame = frames::make_data_to_ds(
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2}, {1, 1, 1, 1, 1, 1},
      Bytes(msdu_size, 0x5A), 7);
  crypto::ccmp_protect(frame, ptk.tk, 1);

  for (auto _ : state) {
    frames::Frame copy = frame;
    benchmark::DoNotOptimize(crypto::ccmp_unprotect(copy, ptk.tk));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(msdu_size));
}
BENCHMARK(BM_CcmpDecode)->Arg(0)->Arg(64)->Arg(256)->Arg(1024)->Arg(1500);

void BM_Pbkdf2PmkDerivation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::derive_pmk("password", "IEEE"));
  }
}
BENCHMARK(BM_Pbkdf2PmkDerivation);

void BM_FcsCheck(benchmark::State& state) {
  // For contrast: the only check the real low-MAC performs before ACKing.
  const Bytes raw = frames::serialize(frames::make_null_function(
      {1, 1, 1, 1, 1, 1}, MacAddress::paper_fake_address(), 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frames::deserialize(raw).fcs_ok);
  }
}
BENCHMARK(BM_FcsCheck);

// --- Part 3: link ablation ------------------------------------------------------

struct AblationResult {
  std::uint64_t tx_success = 0;
  std::uint64_t tx_failures = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fake_acks = 0;      // ACKs elicited by the attacker
  std::uint64_t fake_rejected = 0;  // fakes dropped pre-ACK (validating)
  std::uint64_t cts_sent = 0;       // responses to fake RTS
  std::uint64_t events = 0;
  Duration simulated{};
};

AblationResult run_link(mac::AckPolicyMode policy, int n_frames,
                        int n_fakes) {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 7});

  const MacAddress sender_mac{1, 1, 1, 1, 1, 1};
  const MacAddress receiver_mac{2, 2, 2, 2, 2, 2};
  const crypto::Ptk ptk = crypto::derive_fast_ptk(sender_mac, receiver_mac);

  sim::RadioConfig rc;
  rc.position = {0, 0};
  sim::Device& sender = sim.add_device({.name = "ap"}, sender_mac, rc);
  rc.position = {5, 0};
  mac::MacConfig rx_cfg;
  rx_cfg.ack_policy = policy;
  sim::Device& receiver =
      sim.add_device({.name = "client"}, receiver_mac, rc, rx_cfg);

  crypto::Wpa2Session tx_session(ptk);
  static crypto::Wpa2Session rx_session(ptk);  // outlives the station
  rx_session = crypto::Wpa2Session(ptk);
  receiver.station().set_validation_session(&rx_session);

  rc.position = {7, 3};
  sim::Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x05}, rc);
  core::FakeFrameInjector data_injector(attacker);
  core::FakeFrameInjector rts_injector(attacker, {.use_rts = true});

  // Legitimate protected traffic.
  for (int i = 0; i < n_frames; ++i) {
    frames::Frame f = frames::make_data_to_ds(
        receiver_mac, sender_mac, receiver_mac, Bytes(100, 0x33),
        sender.station().next_sequence());
    // NOTE: addr1 must be the receiver for a direct link.
    f.addr1 = receiver_mac;
    tx_session.protect(f);
    sender.station().send(std::move(f), phy::kOfdm24);
    sim.run_for(milliseconds(60));
  }
  // The attack.
  const auto acks_before = receiver.station().stats().acks_sent;
  for (int i = 0; i < n_fakes; ++i) {
    data_injector.inject_one(receiver_mac);
    sim.run_for(milliseconds(5));
  }
  const auto cts_before = receiver.station().stats().cts_sent;
  for (int i = 0; i < n_fakes; ++i) {
    rts_injector.inject_one(receiver_mac);
    sim.run_for(milliseconds(5));
  }
  sim.run_for(seconds(1));

  AblationResult r;
  r.tx_success = sender.station().stats().tx_success;
  r.tx_failures = sender.station().stats().tx_failures;
  r.retransmissions = sender.station().stats().retransmissions;
  // ACKs sent during the fake-data phase (legit traffic already done).
  r.fake_acks = receiver.station().stats().acks_sent - acks_before -
                (receiver.station().stats().cts_sent - cts_before) * 0;
  r.fake_rejected = receiver.station().stats().validations_rejected;
  r.cts_sent = receiver.station().stats().cts_sent;
  r.events = sim.scheduler().events_executed();
  r.simulated = sim.now() - kSimStart;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PerfReport perf("sifs_ablation");
  bench::header("SIFS ablation (§2.2)", "why Polite WiFi is unpreventable");

  bench::section("part 1: software CCMP decode cost (google-benchmark)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  bench::section("part 2: decode latency vs the SIFS budget");
  const crypto::DecodeLatencyModel fast{.device_class_scale = 0.7};
  const crypto::DecodeLatencyModel mid{};
  const crypto::DecodeLatencyModel slow{.device_class_scale = 1.5};
  std::printf("  %-26s %-12s %-12s %-12s\n", "frame size", "fast dev",
              "mid dev", "slow dev");
  for (const std::size_t size : {28UL, 128UL, 512UL, 1534UL}) {
    std::printf("  %-26zu %8.0f us  %8.0f us  %8.0f us\n", size,
                fast.decode_us(size), mid.decode_us(size),
                slow.decode_us(size));
  }
  bench::kv("SIFS budget 2.4 GHz", "10 us");
  bench::kv("SIFS budget 5 GHz", "16 us");
  bench::compare("decode vs SIFS", "200-700 us >> 10-16 us",
                 "all modeled devices exceed SIFS by >12x");

  bench::section("part 3: link ablation — polite vs validating receiver");
  constexpr int kFrames = 50, kFakes = 50;
  const AblationResult polite =
      run_link(mac::AckPolicyMode::kPoliteHardware, kFrames, kFakes);
  const AblationResult validating =
      run_link(mac::AckPolicyMode::kValidatingMac, kFrames, kFakes);

  std::printf("  %-38s %-14s %-14s\n", "metric", "polite", "validating");
  auto row = [](const char* m, std::uint64_t a, std::uint64_t b) {
    std::printf("  %-38s %-14llu %-14llu\n", m,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  };
  row("legit frames delivered (of 50)", polite.tx_success,
      validating.tx_success);
  row("legit frames failed", polite.tx_failures, validating.tx_failures);
  row("retransmissions burned", polite.retransmissions,
      validating.retransmissions);
  row("fake data frames ACKed (of 50)", polite.fake_acks,
      validating.fake_acks);
  row("frames failing validation (+replays)", polite.fake_rejected,
      validating.fake_rejected);
  row("fake RTS answered with CTS (of 50)", polite.cts_sent,
      validating.cts_sent);

  bench::section("conclusion");
  bench::kv("polite hardware",
            "attack succeeds; link works (the world we live in)");
  bench::kv("validating MAC",
            "fakes rejected — but EVERY legit ACK is late: the link dies");
  bench::kv("and even then", "fake RTS still elicits CTS (can't encrypt "
                             "control frames)");

  // A stray late ACK can land exactly while a retry is in flight and
  // "succeed"; one or two of those don't change the story.
  const bool ok = polite.tx_failures == 0 && polite.fake_acks >= kFakes - 1 &&
                  validating.tx_success <= 2 &&
                  validating.cts_sent >= kFakes - 1;
  perf.add_events(polite.events, polite.simulated);
  perf.add_events(validating.events, validating.simulated);
  perf.finish();
  return ok ? 0 : 1;
}
