// Table 2: "List of WiFi devices and APs that respond to our fake 802.11
// frames" — the city-scale wardriving survey (§3).
//
// Generates a synthetic city with the paper's exact vendor census
// (1,523 clients across 147 vendors, 3,805 APs across 94 vendors — 186
// vendors total), drives the survey rig through it running the
// three-stage discover/inject/verify pipeline, and prints the resulting
// two-column vendor table next to the response statistics.
//
// Full scale takes a few minutes; set PW_SCALE=0.05 for a quick pass.
#include <iostream>

#include "bench_util.h"
#include "core/wardrive.h"
#include "scenario/city.h"

using namespace politewifi;

int main() {
  const double scale = bench::env_scale(1.0);
  bench::PerfReport perf("table2_wardrive");
  bench::header("Table 2", "wardriving survey (scale " +
                               std::to_string(scale) + ")");

  scenario::CityConfig city_cfg;
  city_cfg.scale = scale;
  city_cfg.seed = 2020;
  const scenario::CityPlan plan(
      scenario::CityPlan::grid_route(scale >= 0.5 ? 6 : 2, 500), city_cfg);

  std::printf("  city: %zu APs + %zu clients along a %.1f km route\n",
              plan.ap_count(), plan.client_count(),
              plan.route_length_m() / 1000.0);

  sim::SimulationConfig sc{.seed = 2020};
  if (std::getenv("PW_NO_INDEX")) sc.medium.use_spatial_index = false;
  sim::Simulation sim(sc);
  core::WardriveConfig cfg;
  cfg.speed_mps = 11.0;  // ~40 km/h; the full route takes about an hour
  core::WardriveCampaign campaign(sim, plan, cfg);
  const auto report = campaign.run();

  bench::section("survey outcome");
  bench::kvf("drive duration (simulated s)", "%.0f", to_seconds(report.elapsed));
  bench::kvf("distance driven (km)", "%.2f", report.distance_m / 1000.0);
  bench::kvf("fake frames injected", "%.0f", double(report.fake_frames_sent));
  bench::kvf("ACKs observed to spoofed MAC", "%.0f",
             double(report.acks_observed));

  bench::section("paper vs measured");
  bench::compare("WiFi nodes discovered", "5,328",
                 std::to_string(report.discovered) + " (population " +
                     std::to_string(report.population) + ")");
  bench::compare("client devices", "1,523",
                 std::to_string(report.discovered_clients));
  bench::compare("access points", "3,805",
                 std::to_string(report.discovered_aps));
  bench::compare("distinct vendors", "186",
                 std::to_string(report.distinct_vendors));
  char rate[32];
  std::snprintf(rate, sizeof rate, "%zu/%zu (%.1f%%)", report.responded,
                report.discovered, 100.0 * report.response_rate());
  bench::compare("devices responding to fakes", "5,328/5,328 (100%)", rate);

  bench::section("Table 2 (top-20 vendors, as surveyed)");
  core::print_table2(std::cout, report.client_table, report.ap_table);

  perf.add_scheduler(sim.scheduler());
  perf.note("scale", scale);
  perf.note("radios", double(plan.ap_count() + plan.client_count()));
  const auto& ms = sim.medium().stats();
  perf.note("transmissions", double(ms.transmissions));
  perf.note("candidates_per_tx",
            double(ms.candidates_scanned) / double(ms.transmissions));
  perf.note("receptions_per_tx",
            double(ms.receptions) / double(ms.transmissions));
  perf.note("link_cache_hit_rate",
            double(ms.link_cache_hits) /
                double(ms.link_cache_hits + ms.link_cache_misses));
  perf.note("fer_cache_hit_rate",
            double(ms.fer_cache_hits) /
                double(ms.fer_cache_hits + ms.fer_cache_misses));
  perf.finish();
  return report.response_rate() > 0.97 ? 0 : 1;
}
