// Table 2: "List of WiFi devices and APs that respond to our fake 802.11
// frames" — the city-scale wardriving survey (§3).
//
// Generates a synthetic city with the paper's exact vendor census
// (1,523 clients across 147 vendors, 3,805 APs across 94 vendors — 186
// vendors total), drives the survey rig through it running the
// three-stage discover/inject/verify pipeline, and prints the resulting
// two-column vendor table next to the response statistics.
//
// Full scale takes a few minutes; set PW_SCALE=0.05 for a quick pass.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/wardrive.h"
#include "scenario/city.h"
#include "sim/sweep_runner.h"

using namespace politewifi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const double scale = bench::env_scale(1.0);
  bench::PerfReport perf("table2_wardrive");
  bench::header("Table 2", "wardriving survey (scale " +
                               std::to_string(scale) + ")");

  scenario::CityConfig city_cfg;
  city_cfg.scale = scale;
  city_cfg.seed = 2020;
  const scenario::CityPlan plan(
      scenario::CityPlan::grid_route(scale >= 0.5 ? 6 : 2, 500), city_cfg);

  std::printf("  city: %zu APs + %zu clients along a %.1f km route\n",
              plan.ap_count(), plan.client_count(),
              plan.route_length_m() / 1000.0);

  sim::SimulationConfig sc{.seed = 2020};
  // A wardrive mover ticks ~1.1 m between position updates; snapping the
  // RF anchor to a 4 m quantum keeps per-link cache entries valid across
  // ticks. The bench trades sub-quantum RF fidelity for cache hits; the
  // golden-gated experiments leave the quantum at its off default.
  sc.medium.position_quantum_m = 4.0;
  if (std::getenv("PW_NO_INDEX")) sc.medium.use_spatial_index = false;
  sim::Simulation sim(sc);
  core::WardriveConfig cfg;
  cfg.speed_mps = 11.0;  // ~40 km/h; the full route takes about an hour
  core::WardriveCampaign campaign(sim, plan, cfg);
  const auto report = campaign.run();

  bench::section("survey outcome");
  bench::kvf("drive duration (simulated s)", "%.0f", to_seconds(report.elapsed));
  bench::kvf("distance driven (km)", "%.2f", report.distance_m / 1000.0);
  bench::kvf("fake frames injected", "%.0f", double(report.fake_frames_sent));
  bench::kvf("ACKs observed to spoofed MAC", "%.0f",
             double(report.acks_observed));

  bench::section("paper vs measured");
  bench::compare("WiFi nodes discovered", "5,328",
                 std::to_string(report.discovered) + " (population " +
                     std::to_string(report.population) + ")");
  bench::compare("client devices", "1,523",
                 std::to_string(report.discovered_clients));
  bench::compare("access points", "3,805",
                 std::to_string(report.discovered_aps));
  bench::compare("distinct vendors", "186",
                 std::to_string(report.distinct_vendors));
  char rate[32];
  std::snprintf(rate, sizeof rate, "%zu/%zu (%.1f%%)", report.responded,
                report.discovered, 100.0 * report.response_rate());
  bench::compare("devices responding to fakes", "5,328/5,328 (100%)", rate);

  bench::section("Table 2 (top-20 vendors, as surveyed)");
  core::print_table2(std::cout, report.client_table, report.ap_table);

  perf.add_scheduler(sim.scheduler());
  perf.note("scale", scale);
  perf.note("radios", double(plan.ap_count() + plan.client_count()));
  const auto& ms = sim.medium().stats();
  perf.note("transmissions", double(ms.transmissions));
  perf.note("candidates_per_tx",
            double(ms.candidates_scanned) / double(ms.transmissions));
  perf.note("receptions_per_tx",
            double(ms.receptions) / double(ms.transmissions));
  perf.note("link_cache_hit_rate",
            double(ms.link_cache_hits) /
                double(ms.link_cache_hits + ms.link_cache_misses));
  perf.note("fer_cache_hit_rate",
            double(ms.fer_cache_hits) /
                double(ms.fer_cache_hits + ms.fer_cache_misses));

  // --- Fading channel survey --------------------------------------------
  // The same discover/inject/verify pipeline over a time-correlated
  // channel (rho = 0.9, sigma = 2 dB, 1 ms coherence): every delivery
  // composes a per-link AR(1) fade onto the cached static budget, and
  // marginal survey links flap the way real ones do. The *_per_sec note
  // rides bench_compare's relative gate plus an absolute CI floor, so
  // the fading lane cannot quietly fall off the SoA fan-out path.
  bench::section("fading-channel survey (rho=0.9, sigma=2 dB, 1 ms)");
  {
    scenario::CityConfig fading_cfg;
    fading_cfg.scale = scale / 4.0;
    fading_cfg.seed = 2020;
    const scenario::CityPlan fading_plan(
        scenario::CityPlan::grid_route(2, 500), fading_cfg);
    sim::SimulationConfig fading_sc{.seed = 2020};
    fading_sc.medium.position_quantum_m = 4.0;
    fading_sc.medium.fading_rho = 0.9;
    fading_sc.medium.fading_sigma_db = 2.0;
    fading_sc.medium.fading_coherence_us = 1000.0;
    if (std::getenv("PW_NO_INDEX")) {
      fading_sc.medium.use_spatial_index = false;
    }
    sim::Simulation fading_sim(fading_sc);
    core::WardriveCampaign fading_campaign(fading_sim, fading_plan, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto fading_report = fading_campaign.run();
    const double dt = seconds_since(t0);
    const auto& fs = fading_sim.medium().stats();
    std::printf("  %zu/%zu responded (%.1f%%)\n", fading_report.responded,
                fading_report.discovered,
                100.0 * fading_report.response_rate());
    bench::kvf("survey wall (s)", "%.2f", dt);
    bench::kvf("AR(1) samples drawn", "%.0f", double(fs.fading_advances));
    bench::kvf("fading cache hits", "%.0f", double(fs.fading_cache_hits));
    perf.note("fading_survey_tx_per_sec", double(fs.transmissions) / dt);
    perf.note("fading_survey_response_rate", fading_report.response_rate());
    perf.note("fading_advances_per_tx",
              double(fs.fading_advances) / double(fs.transmissions));
  }

  // --- District scale-out -----------------------------------------------
  // `pw_run --city` splits the survey into one process per district; this
  // phase measures the same split in-process: four quarter-scale district
  // surveys run back to back, then through a 4-worker SweepRunner pool.
  // Each district is a complete Simulation over a 4-shard medium (the
  // ShardEquivalence suite proves the shard count cannot change the
  // survey), so the parallel phase's speedup is pure wall-clock. Both
  // phases measure alike on a single-core box; the >=2.5x shows up on the
  // multi-core bench-regression runner. Notes are throughput-style
  // (*_per_sec) so bench_compare gates them, plus the procs count so it
  // can derive per-process scaling efficiency.
  const std::size_t districts = 4;
  const auto run_district = [&](std::size_t k) -> std::uint64_t {
    scenario::CityConfig district_cfg;
    district_cfg.scale = scale / double(districts);
    district_cfg.seed = 2020 + k + 1;
    const scenario::CityPlan district_plan(
        scenario::CityPlan::grid_route(2, 500), district_cfg);
    sim::SimulationConfig district_sc{
        .seed = static_cast<std::uint64_t>(3000 + k)};
    district_sc.medium.shards = 4;
    district_sc.medium.position_quantum_m = 4.0;
    if (std::getenv("PW_NO_INDEX")) {
      district_sc.medium.use_spatial_index = false;
    }
    sim::Simulation district_sim(district_sc);
    core::WardriveCampaign district_campaign(district_sim, district_plan, cfg);
    (void)district_campaign.run();
    return district_sim.medium().stats().transmissions;
  };

  bench::section("district scale-out (4 districts, 4-shard media)");
  const auto t_seq = std::chrono::steady_clock::now();
  std::uint64_t district_tx = 0;
  for (std::size_t k = 0; k < districts; ++k) district_tx += run_district(k);
  const double seq_s = seconds_since(t_seq);

  const sim::SweepRunner pool(static_cast<unsigned>(districts));
  const auto t_par = std::chrono::steady_clock::now();
  const auto par_tx = pool.run_indexed(districts, run_district);
  const double par_s = seconds_since(t_par);
  std::uint64_t par_tx_total = 0;
  for (const auto tx : par_tx) par_tx_total += tx;

  bench::kvf("sequential wall (s)", "%.2f", seq_s);
  bench::kvf("parallel wall (s, 4 workers)", "%.2f", par_s);
  bench::kvf("speedup", "%.2fx", seq_s / par_s);
  perf.note("district_procs", double(districts));
  perf.note("district_seq_wall_s", seq_s);
  perf.note("district_par_wall_s", par_s);
  perf.note("district_seq_tx_per_sec", double(district_tx) / seq_s);
  perf.note("district_par_tx_per_sec", double(par_tx_total) / par_s);

  perf.finish();
  return report.response_rate() > 0.97 ? 0 : 1;
}
