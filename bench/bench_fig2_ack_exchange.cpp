// Figure 2: "Frames exchanged between attacker and victim."
//
// Reproduces the paper's Wireshark capture: an attacker outside the
// network sends unencrypted null-function frames from the spoofed source
// aa:bb:bb:bb:bb:bb to a WPA2-protected victim, and the victim's hardware
// answers every one with an Acknowledgement to the spoofed address.
// Prints the packet list and verifies the SIFS timing of each ACK.
#include "bench_util.h"
#include "core/ack_sniffer.h"
#include "core/injector.h"
#include "core/monitor.h"
#include "sim/network.h"

#include <iostream>

using namespace politewifi;

int main() {
  bench::PerfReport perf("fig2_ack_exchange");
  bench::header("Figure 2", "victim ACKs fake frames from a stranger");

  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 2020});
  auto& trace = sim.trace();

  mac::ApConfig apc;
  apc.ssid = "PrivateNet";  // WPA2-PSK; attacker has no key
  sim::Device& ap =
      sim.add_ap("home-ap", {0xf2, 0x6e, 0x0b, 0x11, 0x22, 0x33}, {0, 0}, apc);
  sim::Device& victim = sim.add_client(
      "victim-tablet", {0x3c, 0x28, 0x6d, 0xaa, 0xbb, 0xcc}, {5, 0}, {});
  sim.establish(victim, seconds(10));

  sim::RadioConfig rig;
  rig.position = {9, 4};
  sim::Device& attacker = sim.add_device(
      {.name = "rtl8812au",
       .vendor = "Realtek",
       .chipset = "RTL8812AU",
       .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x01}, rig);

  core::MonitorHub hub(attacker.station());
  core::AckSniffer sniffer(hub, attacker.radio(),
                           MacAddress::paper_fake_address());
  core::FakeFrameInjector injector(attacker);

  // Only show the attack exchange in the packet list.
  trace.clear();
  trace.set_address_filter({MacAddress::paper_fake_address()});

  constexpr int kFakes = 10;
  for (int i = 0; i < kFakes; ++i) {
    injector.inject_one(victim.address());
    sniffer.note_injection(victim.address());
    sim.run_for(milliseconds(20));
  }

  bench::section("packet list (Wireshark style, as in Figure 2)");
  trace.dump(std::cout, 8);

  const std::size_t acks = trace.count([](const sim::TraceEntry& e) {
    return e.parsed && e.frame.fc.is_ack() &&
           e.frame.addr1 == MacAddress::paper_fake_address();
  });

  bench::section("results");
  bench::compare("victim ACKs fake frames", "yes (all)",
                 acks == kFakes ? "yes (all " + std::to_string(acks) + ")"
                                : std::to_string(acks) + "/" +
                                      std::to_string(kFakes));
  bench::compare("ACK receiver address", "aa:bb:bb:bb:bb:bb (spoofed)",
                 sniffer.total() > 0
                     ? sniffer.observations().front().ra.to_string()
                     : "(none)");
  bench::compare("attacker associated / has key", "no / no", "no / no");
  bench::kvf("victim ACKs sent", "%.0f",
             double(victim.station().stats().acks_sent));
  bench::kvf("victim frames discarded in software", "%.0f",
             double(victim.client()->stats().frames_discarded));
  bench::kvf("AP handshakes completed (victim's real link)", "%.0f",
             double(ap.ap()->stats().handshakes_completed));

  // Artifact: a real pcap of the exchange, loadable in Wireshark.
  const char* pcap = "fig2_ack_exchange.pcap";
  if (trace.write_pcap(pcap)) {
    bench::kv("pcap written", pcap);
  }
  perf.add_scheduler(sim.scheduler());
  perf.finish();
  return acks == kFakes ? 0 : 1;
}
