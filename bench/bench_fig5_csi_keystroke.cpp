// Figure 5: "The measured CSI of acknowledgments received from a victim
// device" — the keystroke-inference threat (§4.1).
//
// An ESP32-class attacker in a different room streams 150 fake frames per
// second at a WPA2 tablet and measures the CSI of the elicited ACKs while
// a scripted user: leaves the tablet on the ground (0-10 s), approaches
// and picks it up (10-14 s), holds it (14-24 s), then types (24-34 s).
// Prints the subcarrier-17 amplitude series (downsampled), the per-phase
// variance table, the activity segmentation, and keystroke recovery
// scored against ground truth.
#include "bench_util.h"
#include "core/csi_collector.h"
#include "sim/network.h"
#include "scenario/sensing_scene.h"
#include "sensing/activity.h"
#include "sensing/keystroke.h"

using namespace politewifi;

int main() {
  bench::PerfReport perf("fig5_csi_keystroke");
  bench::header("Figure 5", "CSI of ACKs during still/pickup/hold/typing");

  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 55});

  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("home-ap", {0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03}, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  sim::Device& victim = sim.add_client(
      "surface-pro", {0x3c, 0x28, 0x6d, 0xaa, 0xbb, 0xcc}, {4, 0}, cc);
  sim.establish(victim, seconds(10));

  sim::RadioConfig rig;
  rig.position = {10, 6};  // different room
  rig.capture_csi = true;
  sim::Device& attacker = sim.add_device(
      {.name = "esp32",
       .vendor = "Espressif",
       .chipset = "ESP32",
       .kind = sim::DeviceKind::kAttacker},
      {0x02, 0x0a, 0xc4, 0x01, 0x02, 0x03}, rig);

  // The Figure 5 activity script.
  scenario::BodyMotionModel model({.seed = 5});
  model.add_phase(scenario::Activity::kStill, seconds(10));
  model.add_phase(scenario::Activity::kPickup, seconds(4));
  model.add_phase(scenario::Activity::kHold, seconds(10));
  model.add_phase(scenario::Activity::kTyping, seconds(10));

  const auto strokes = scenario::TypingModel::generate(
      "attack at dawn", {.words_per_minute = 38, .seed = 17});
  std::vector<scenario::Keystroke> shifted;
  for (auto k : strokes) {
    k.at += seconds(24);
    if (k.at < seconds(34)) shifted.push_back(k);
  }
  model.set_keystrokes(shifted);

  const TimePoint start = sim.now();
  scenario::install_body_csi(sim.medium(), victim.radio(), attacker.radio(),
                             &model, start);

  core::CsiCollector collector(attacker, victim.address());
  collector.start(150.0);  // the paper's 150 fake frames per second
  sim.run_for(seconds(34));
  collector.stop();

  bench::section("collection");
  bench::kvf("fake frames injected", "%.0f",
             double(collector.frames_injected()));
  bench::kvf("CSI samples captured (from ACKs)", "%.0f",
             double(collector.samples().size()));
  bench::kvf("effective sample rate (Hz)", "%.1f",
             double(collector.samples().size()) / 34.0);

  const auto series =
      sensing::resample_amplitude(collector.samples(), 17, 150.0);

  // Figure 5 series, downsampled to 2 Hz for the console.
  bench::section("CSI amplitude, subcarrier 17 (downsampled to 2 Hz)");
  std::printf("  t(s)  amplitude\n");
  for (std::size_t i = 0; i < series.size(); i += 75) {
    const double t = series.time_of(i) - series.t0_s;
    std::printf("  %5.1f %8.4f\n", t, series.v[i]);
  }

  // Per-phase statistics (the paper's qualitative claims, quantified).
  auto phase_stats = [&](double t0, double t1) {
    std::vector<double> seg;
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double t = series.time_of(i) - series.t0_s;
      if (t >= t0 && t < t1) seg.push_back(series.v[i]);
    }
    return std::pair<double, double>(sensing::mean(seg),
                                     sensing::stddev(seg));
  };
  const auto still = phase_stats(1, 9);
  const auto pickup = phase_stats(10.5, 13.5);
  const auto hold = phase_stats(15, 23);
  const auto typing = phase_stats(25, 33);

  bench::section("per-phase amplitude statistics");
  std::printf("  %-10s %-10s %-10s %-14s\n", "phase", "mean", "stddev",
              "stddev/still");
  auto row = [&](const char* name, std::pair<double, double> s) {
    std::printf("  %-10s %-10.4f %-10.4f %-14.1f\n", name, s.first, s.second,
                s.second / std::max(still.second, 1e-9));
  };
  row("still", still);
  row("pickup", pickup);
  row("hold", hold);
  row("typing", typing);

  bench::section("paper vs measured");
  bench::compare("still amplitude", "very stable",
                 still.second < 0.05 ? "stable (sigma < 0.05)" : "NOISY");
  bench::compare("pickup", "large fluctuations",
                 pickup.second > 20 * still.second ? "large (>20x still)"
                                                   : "small");
  bench::compare("typing vs holding", "very distinct",
                 typing.second > 1.5 * hold.second
                     ? "distinct (typing sigma > 1.5x hold)"
                     : "similar");

  // Activity segmentation.
  sensing::ActivityDetector detector;
  const auto segments = detector.segment(series);
  bench::section("activity segmentation");
  for (const auto& s : segments) {
    std::printf("  %6.1f - %6.1f s  %s\n", s.start_s - series.t0_s,
                s.end_s - series.t0_s, sensing::motion_class_name(s.cls));
  }

  // Keystroke recovery inside the typing window.
  sensing::TimeSeries typing_window;
  typing_window.dt_s = series.dt_s;
  typing_window.t0_s = 24.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = series.time_of(i) - series.t0_s;
    if (t >= 24.0 && t < 34.0) typing_window.v.push_back(series.v[i]);
  }
  sensing::KeystrokeDetector kd;
  const auto events = kd.detect(typing_window);
  std::vector<double> truth;
  for (const auto& k : shifted) truth.push_back(to_seconds(k.at));
  const auto score = sensing::match_keystrokes(events, truth);

  bench::section("keystroke recovery (typing window)");
  bench::kvf("ground-truth keystrokes", "%.0f", double(truth.size()));
  bench::kvf("detected events", "%.0f", double(events.size()));
  bench::kvf("precision", "%.2f", score.precision());
  bench::kvf("recall", "%.2f", score.recall());
  bench::kvf("estimated typing rate (keys/s)", "%.2f",
             sensing::KeystrokeDetector::typing_rate(events));

  const bool shape_ok = pickup.second > 20 * still.second &&
                        typing.second > 1.5 * hold.second &&
                        score.f1() > 0.6;
  perf.add_scheduler(sim.scheduler());
  perf.finish();
  return shape_ok ? 0 : 1;
}
