// Event-engine microbenchmark: the raw scheduler and medium numbers that
// every experiment above is built from.
//
//   1. scheduler push/pop  — 1M timers through the pooled binary heap
//   2. schedule/cancel churn — the lazy-cancellation path (tombstones)
//   3. medium fan-out       — one transmitter among 10 / 500 / 5000
//      attached radios, spatial index on vs off
//   4. ppdu pipeline        — one injector streaming at 50 receivers,
//      zero-copy pipeline (shared payloads + frame templates + batched
//      fan-out) vs the legacy per-frame-allocation configuration, with a
//      counting-allocator hook proving the steady state allocation-free
//
// Emits BENCH_event_engine.json in the same format as the experiment
// benches, so the engine's perf trajectory is tracked PR over PR.
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>

#include "bench_util.h"
#include "frames/frame.h"
#include "obs/metrics.h"
#include "sim/medium.h"
#include "sim/radio.h"
#include "sim/shard.h"

// --- Counting allocator hook -------------------------------------------------
// Replaceable global operator new/delete: every heap allocation in the
// process bumps one counter, so a bench phase can assert "no allocations
// happened here" instead of guessing from throughput.
namespace politewifi::bench_alloc {
std::uint64_t count = 0;
}  // namespace politewifi::bench_alloc

namespace {
void* counted_alloc(std::size_t n) {
  ++politewifi::bench_alloc::count;
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t) {
  return counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace politewifi;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// 1M schedule + run_all. Returns events/sec.
double bench_push_pop(bench::PerfReport& perf) {
  constexpr int kEvents = 1'000'000;
  sim::Scheduler scheduler;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    // Mixed delays so heap pushes actually sift. 64-bit multiply: the
    // 32-bit product overflows (UB) around i = 271k, and the optimizer's
    // no-overflow assumption then turns this into an infinite loop.
    scheduler.schedule_in(microseconds((std::int64_t{i} * 7919) % 10000),
                          [&sink] { ++sink; });
  }
  scheduler.run_all();
  const double dt = seconds_since(t0);
  perf.add_events(scheduler.events_executed(), scheduler.now() - kSimStart);
  bench::kvf("push+pop 1M events (s)", "%.3f", dt);
  bench::kvf("push+pop events/sec", "%.0f", kEvents / dt);
  bench::kvf("pool slots at end", "%.0f", double(scheduler.pool_slots()));
  return sink == kEvents ? kEvents / dt : 0.0;
}

/// 1M schedule-then-cancel cycles. The regression this guards: cancel
/// used to push every id into an unbounded set that pop never fully
/// drained. Now a cancel tombstones its pooled slot and pop reclaims it,
/// so memory stays O(live events).
double bench_cancel_churn(bench::PerfReport& perf) {
  constexpr int kCycles = 1'000'000;
  sim::Scheduler scheduler;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kCycles; ++i) {
    const auto id = scheduler.schedule_in(seconds(10), [] {});
    scheduler.cancel(id);
    if ((i & 1023) == 0) scheduler.run_for(microseconds(1));
  }
  scheduler.run_all();
  const double dt = seconds_since(t0);
  bench::kvf("schedule+cancel 1M cycles (s)", "%.3f", dt);
  bench::kvf("cancel cycles/sec", "%.0f", kCycles / dt);
  bench::kvf("pool slots at end", "%.0f", double(scheduler.pool_slots()));
  bench::kvf("tombstones at end", "%.0f", double(scheduler.tombstones()));
  perf.note("cancel_cycles_per_sec", kCycles / dt);
  return kCycles / dt;
}

struct FanoutResult {
  double tx_per_sec = 0.0;
  std::uint64_t link_hits = 0;
  std::uint64_t link_misses = 0;
  std::uint64_t fading_advances = 0;
};

/// Transmitters from a small pool rotating among `n` radios scattered
/// over `extent_m`, with or without the spatial index. A pool — rather
/// than every radio taking one turn — is the realistic dense-cell shape
/// (a handful of beaconing APs and chatty stations in front of a large
/// population) and is what gives the link cache a live working set to
/// hit: each pool member's fan-out repeats every `pool` rounds.
FanoutResult bench_fanout(bench::PerfReport& perf, std::size_t n,
                          double extent_m, bool use_index, int rounds,
                          double fading_coherence_us = 0.0,
                          bool note_perf = true) {
  const bool fading = fading_coherence_us > 0.0;
  sim::Scheduler scheduler;
  sim::MediumConfig mc;
  mc.shadowing_sigma_db = 0.0;
  mc.use_spatial_index = use_index;
  if (fading) {
    // Heavily correlated fading: every delivery composes a per-link
    // AR(1) fade on top of the cached static budget. The caller picks
    // the coherence interval: short (100 µs) makes the chains advance
    // on nearly every evaluation (worst-case throughput), long makes
    // repeat evaluations land in one interval (cache-hit harvest).
    mc.fading_rho = 0.9;
    mc.fading_sigma_db = 2.0;
    mc.fading_coherence_us = fading_coherence_us;
  }
  sim::Medium medium(scheduler, mc, /*seed=*/7);

  // Station-less radios: Radio::deliver drops the PPDU when no MAC is
  // attached, which is exactly what we want — this measures the medium,
  // not the MAC.
  Rng rng(1234);
  std::vector<std::unique_ptr<sim::Radio>> radios;
  radios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::RadioConfig rc;
    rc.position = {rng.uniform(0.0, extent_m), rng.uniform(0.0, extent_m)};
    radios.push_back(
        std::make_unique<sim::Radio>(medium, scheduler, rc));
  }
  // Pool sized so every member transmits many times even in PW_SCALE'd
  // CI runs (rounds / 20), capped low enough that the pool's neighbor
  // lanes and link-cache lines stay resident between turns.
  const std::size_t pool = std::max<std::size_t>(
      1, std::min({std::size_t(rounds) / 20, n / 50, std::size_t{16}}));

  const Bytes ppdu(64, 0xAA);
  phy::TxVector tx;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    medium.transmit(*radios[r % pool], ppdu, tx);
    scheduler.run_all();
  }
  const double dt = seconds_since(t0);
  const auto& stats = medium.stats();
  const double lookups =
      double(stats.link_cache_hits + stats.link_cache_misses);
  const double hit_rate =
      lookups > 0.0 ? double(stats.link_cache_hits) / lookups : 0.0;
  std::printf(
      "  %5zu radios  index=%-3s  %zu tx pool  %7.0f tx/s  "
      "(%.2f candidates/tx, %.2f receptions/tx, %.1f%% link-cache hits"
      "%s)\n",
      n, use_index ? "on" : "off", pool, rounds / dt,
      double(stats.candidates_scanned) / double(stats.transmissions),
      double(stats.receptions) / double(stats.transmissions),
      hit_rate * 100.0, fading ? ", fading on" : "");
  perf.add_events(scheduler.events_executed(), scheduler.now() - kSimStart);
  if (note_perf) {
    char key[64];
    std::snprintf(key, sizeof key, "fanout_%zu_%s%s_tx_per_sec", n,
                  use_index ? "indexed" : "brute", fading ? "_fading" : "");
    perf.note(key, rounds / dt);
    if (!fading) {
      std::snprintf(key, sizeof key, "fanout_%zu_%s_link_cache_hit_rate", n,
                    use_index ? "indexed" : "brute");
      perf.note(key, hit_rate);
    }
  }
  return FanoutResult{rounds / dt, stats.link_cache_hits,
                      stats.link_cache_misses, stats.fading_advances};
}

/// City-shard point: the dense fan-out workload routed through a sharded
/// medium — `shards` super-cell schedulers sharing one timebase, drained
/// by the ShardExecutor's k-way merge — against the unsharded single-heap
/// path (`shards` = 1). Receptions are identical either way (the
/// ShardEquivalence suite proves it); what this measures is the merge
/// and boundary-mirror overhead the in-process sharded city pays.
double bench_city_shard(bench::PerfReport& perf, int shards, std::size_t n,
                        double extent_m, int rounds) {
  sim::Scheduler primary;
  std::vector<std::unique_ptr<sim::Scheduler>> extras;
  std::vector<sim::Scheduler*> schedulers{&primary};
  for (int s = 1; s < shards; ++s) {
    extras.push_back(std::make_unique<sim::Scheduler>());
    extras.back()->adopt_timebase(primary);
    schedulers.push_back(extras.back().get());
  }

  sim::MediumConfig mc;
  mc.shadowing_sigma_db = 0.0;
  mc.shards = shards;
  sim::Medium medium(primary, mc, /*seed=*/7);
  if (shards > 1) medium.set_shard_schedulers(schedulers);
  sim::ShardExecutor executor(schedulers);

  Rng rng(1234);
  std::vector<std::unique_ptr<sim::Radio>> radios;
  radios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::RadioConfig rc;
    rc.position = {rng.uniform(0.0, extent_m), rng.uniform(0.0, extent_m)};
    radios.push_back(std::make_unique<sim::Radio>(medium, primary, rc));
  }
  const std::size_t pool = std::max<std::size_t>(
      1, std::min({std::size_t(rounds) / 20, n / 50, std::size_t{16}}));

  const Bytes ppdu(64, 0xAA);
  phy::TxVector tx;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    medium.transmit(*radios[r % pool], ppdu, tx);
    if (shards > 1) {
      executor.run_all();
    } else {
      primary.run_all();
    }
  }
  const double dt = seconds_since(t0);
  const auto& stats = medium.stats();
  std::printf(
      "  %5zu radios  shards=%d  %7.0f tx/s  "
      "(%llu mirrored tx, %llu handoffs)\n",
      n, shards, rounds / dt,
      static_cast<unsigned long long>(stats.mirrored_tx),
      static_cast<unsigned long long>(stats.shard_handoffs));
  perf.add_events(executor.events_executed(), executor.now() - kSimStart);
  char key[64];
  std::snprintf(key, sizeof key, "city_shard_%d_tx_per_sec", shards);
  perf.note(key, rounds / dt);
  return rounds / dt;
}

/// One attacker streaming fake null-function frames at `n_rx` in-range
/// station-less receivers — the inject→transmit→deliver path the battery
/// attack lives on. `zero_copy` toggles the whole pipeline (shared
/// pooled payloads, frame-template cache, batched fan-out) against the
/// legacy per-frame-allocation configuration. Returns frames/sec and,
/// for the zero-copy run, records the steady-state allocation delta
/// measured by the counting operator-new hook after a warm-up phase.
double bench_ppdu_pipeline(bench::PerfReport& perf, bool zero_copy,
                           std::size_t n_rx, int frames,
                           bool note_perf = true) {
  sim::Scheduler scheduler;
  sim::MediumConfig mc;
  mc.shadowing_sigma_db = 0.0;
  mc.model_frame_errors = false;
  // Sub-µs propagation is irrelevant at 100 m and would give every
  // receiver a distinct arrival time, hiding what this section measures:
  // batched fan-out collapsing the per-receiver end-of-PPDU events into
  // one delivery event per transmission.
  mc.model_propagation_delay = false;
  mc.pool_ppdus = zero_copy;
  mc.batched_fanout = zero_copy;
  mc.frame_templates = zero_copy;
  sim::Medium medium(scheduler, mc, /*seed=*/7);

  sim::RadioConfig arc;
  arc.position = {50.0, 50.0};
  sim::Radio attacker(medium, scheduler, arc);

  Rng rng(1234);
  std::vector<std::unique_ptr<sim::Radio>> receivers;
  receivers.reserve(n_rx);
  for (std::size_t i = 0; i < n_rx; ++i) {
    sim::RadioConfig rc;
    rc.position = {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    receivers.push_back(std::make_unique<sim::Radio>(medium, scheduler, rc));
  }

  frames::Frame fake = frames::make_null_function(
      MacAddress::broadcast(), MacAddress::paper_fake_address(), 0);
  phy::TxVector tx;

  // Warm-up: fills the PPDU pool, the template cache, and the delivery
  // record free-list so the measured phase sees only recycled capacity.
  constexpr int kWarmup = 256;
  std::uint16_t seq = 0;
  for (int i = 0; i < kWarmup; ++i) {
    fake.seq.sequence = seq++ & 0x0FFF;
    attacker.transmit(fake, tx);
    scheduler.run_all();
  }

  const std::uint64_t allocs_before = politewifi::bench_alloc::count;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < frames; ++i) {
    fake.seq.sequence = seq++ & 0x0FFF;
    attacker.transmit(fake, tx);
    scheduler.run_all();
  }
  const double dt = seconds_since(t0);
  const std::uint64_t steady_allocs =
      politewifi::bench_alloc::count - allocs_before;

  const char* mode = zero_copy ? "zero-copy" : "legacy   ";
  std::printf(
      "  %s  %7.0f frames/s  %6llu allocs in steady phase  "
      "%8llu payload bytes copied\n",
      mode, frames / dt,
      static_cast<unsigned long long>(steady_allocs),
      static_cast<unsigned long long>(medium.stats().ppdu_bytes_copied));
  perf.add_events(scheduler.events_executed(), scheduler.now() - kSimStart);
  if (!note_perf) return frames / dt;
  if (zero_copy) {
    perf.note("ppdu_pipeline_frames_per_sec", frames / dt);
    perf.note("ppdu_pipeline_steady_allocations", double(steady_allocs));
    perf.note("ppdu_pipeline_bytes_copied",
              double(medium.stats().ppdu_bytes_copied));
  } else {
    perf.note("ppdu_pipeline_legacy_frames_per_sec", frames / dt);
  }
  return frames / dt;
}

}  // namespace

int main() {
  bench::PerfReport perf("event_engine");
  bench::header("Event engine", "scheduler + medium microbenchmarks");

  bench::section("scheduler: push/pop");
  const double pp = bench_push_pop(perf);
  perf.note("push_pop_events_per_sec", pp);

  bench::section("scheduler: schedule/cancel churn");
  bench_cancel_churn(perf);

  bench::section("medium: fan-out (tx pool among n radios, 2 km square)");
  const double scale = bench::env_scale(1.0);
  const int rounds = scale >= 1.0 ? 2000 : 200;
  bool fanout_hits_dominate = true;
  for (const std::size_t n : {std::size_t{10}, std::size_t{500},
                              std::size_t{5000}}) {
    const FanoutResult indexed =
        bench_fanout(perf, n, 2000.0, /*use_index=*/true, rounds);
    bench_fanout(perf, n, 2000.0, /*use_index=*/false,
                 n >= 5000 ? rounds / 10 : rounds);
    // The acceptance bar the set-associative cache + SoA lanes exist
    // for: on a steady fan-out workload, lookups served from cache must
    // dominate recomputes.
    if (indexed.link_hits <= indexed.link_misses) {
      std::printf("  FAIL fanout_%zu: link cache hits %llu <= misses %llu\n",
                  n, static_cast<unsigned long long>(indexed.link_hits),
                  static_cast<unsigned long long>(indexed.link_misses));
      fanout_hits_dominate = false;
    }
  }
  // City-shard scale: 50k radios at the same density (extent grows by
  // sqrt(10)), indexed only — the brute scan at this size measures
  // nothing the 5000-point doesn't already.
  {
    const FanoutResult big = bench_fanout(perf, 50000, 6324.6,
                                          /*use_index=*/true, rounds / 10);
    if (big.link_hits <= big.link_misses) {
      std::printf("  FAIL fanout_50000: link cache hits %llu <= misses %llu\n",
                  static_cast<unsigned long long>(big.link_hits),
                  static_cast<unsigned long long>(big.link_misses));
      fanout_hits_dominate = false;
    }
  }

  bench::section("medium: fan-out under AR(1) fading (rho=0.9, 100 us)");
  // The dense 5000-radio point again, with the dynamic channel term ON:
  // every delivery composes a per-link fade on top of the cached static
  // budget, and each link's AR(1) chain advances ~10k times per sim
  // second. Gated as its own absolute floor in CI — the fading lane must
  // stay within striking distance of the static-only fan-out, or the SoA
  // pipeline has stopped surviving the channel refactor.
  bool fading_lane_live = true;
  {
    const FanoutResult faded = bench_fanout(perf, 5000, 2000.0,
                                            /*use_index=*/true, rounds,
                                            /*fading_coherence_us=*/100.0);
    if (faded.fading_advances == 0) {
      std::printf("  FAIL fanout_5000_fading: no AR(1) samples drawn\n");
      fading_lane_live = false;
    }
  }

  bench::section("city shard: fan-out through the sharded medium");
  // Same density as the 5000-radio point: 2 km square, shard cells at
  // their 256 m default, so a 4-shard lattice interleaves ~64 super-cells
  // and every pool member's fan-out crosses borders (mirrored tx > 0).
  bench_city_shard(perf, /*shards=*/1, 5000, 2000.0, rounds / 10);
  bench_city_shard(perf, /*shards=*/4, 5000, 2000.0, rounds / 10);

  bench::section("ppdu pipeline: 1 attacker -> 50 receivers");
  const int pipeline_frames = scale >= 1.0 ? 20000 : 2000;
  const double legacy =
      bench_ppdu_pipeline(perf, /*zero_copy=*/false, 50, pipeline_frames);
  const double zc =
      bench_ppdu_pipeline(perf, /*zero_copy=*/true, 50, pipeline_frames);
  if (legacy > 0.0) {
    bench::kvf("zero-copy speedup", "%.2fx", zc / legacy);
    perf.note("ppdu_pipeline_speedup", zc / legacy);
  }

  bench::section("metrics harvest (fixed size, untimed)");
  // The obs/ registry stays disabled through every timed phase above so
  // the throughput baselines are unperturbed; these small fixed-size
  // deterministic passes harvest the counters bench_compare.py --metrics
  // gates. The fan-out pass keeps frame-error modelling on, so the FER
  // and link caches see real traffic (hit rates); the zero-copy pipeline
  // pass pins ppdu_bytes_copied at 0. Under -DPW_METRICS=OFF the macros
  // are compiled out and the block is all zeros, which the comparer
  // treats as "no data" rather than a regression.
  obs::Registry::reset();
  obs::Registry::set_enabled(true);
  bench_fanout(perf, 500, 2000.0, /*use_index=*/true, /*rounds=*/200,
               /*fading_coherence_us=*/0.0, /*note_perf=*/false);
  // Long-coherence fading pass: a pool member's turns recur inside one
  // coherence interval, so the AR(1) lanes serve real cache hits and
  // bench_compare's fading_cache_hit_rate pair gets data to gate.
  bench_fanout(perf, 500, 2000.0, /*use_index=*/true, /*rounds=*/200,
               /*fading_coherence_us=*/2000.0, /*note_perf=*/false);
  bench_ppdu_pipeline(perf, /*zero_copy=*/true, 50, 2000,
                      /*note_perf=*/false);
  obs::Registry::set_enabled(false);
  perf.set_metrics(obs::Registry::to_json());

  perf.finish();
  return pp > 0.0 && fanout_hits_dominate && fading_lane_live ? 0 : 1;
}
