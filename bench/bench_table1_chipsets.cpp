// Table 1: "List of tested chipsets/devices."
//
// Stands up each bench device from the paper's Table 1 (plus the ESP8266
// and ESP32 from §4) with its own chipset profile, attacks it with fake
// frames from an unassociated stranger, and reports whether it exhibits
// Polite WiFi. The paper's finding: every one of them does.
// Each device is attacked in its own simulation, so the table fans out
// across PW_THREADS workers (sim::SweepRunner) with bit-identical rows
// for any thread count.
#include "bench_util.h"
#include "core/injector.h"
#include "scenario/device_profiles.h"
#include "scenario/oui_db.h"
#include "sim/network.h"
#include "sim/sweep_runner.h"

using namespace politewifi;

namespace {

struct Row {
  scenario::ChipsetProfile profile;
  int fakes = 0;
  int acks = 0;
  std::uint64_t events = 0;
  Duration simulated{};
};

Row attack_device(const scenario::ChipsetProfile& profile,
                  std::uint64_t seed) {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = seed});

  const MacAddress mac = scenario::OuiDatabase::instance().make_address(
      profile.vendor, sim.rng());

  sim::Device* target = nullptr;
  if (profile.is_access_point) {
    mac::ApConfig apc;
    apc.band = profile.band;
    apc.fast_keys = true;
    apc.deauth_unknown_senders = profile.deauth_on_unknown;
    target = &sim.add_ap(profile.device_name, mac, {0, 0}, apc);
  } else {
    sim::RadioConfig rc;
    rc.band = profile.band;
    rc.position = {0, 0};
    rc.power = profile.power;
    mac::MacConfig mc;
    mc.sifs_jitter_ns = profile.sifs_jitter_ns;
    target = &sim.add_device({.name = profile.device_name,
                              .vendor = profile.vendor,
                              .chipset = profile.wifi_module,
                              .kind = sim::DeviceKind::kClient},
                             mac, rc, mc);
  }

  sim::RadioConfig rig;
  rig.band = profile.band;
  rig.channel = profile.is_access_point ? 6 : rig.channel;
  rig.position = {6, 2};
  // Match the victim's channel: the AP helper uses its config channel.
  rig.channel = target->radio().config().channel;
  sim::Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0x12, 0x34, 0x56, 0x78, 0x9a}, rig);

  core::FakeFrameInjector injector(attacker);
  Row row;
  row.profile = profile;
  const auto before = target->station().stats().acks_sent;
  for (int i = 0; i < 50; ++i) {
    injector.inject_one(target->address());
    sim.run_for(milliseconds(20));
    ++row.fakes;
  }
  row.acks = int(target->station().stats().acks_sent - before);
  row.events = sim.scheduler().events_executed();
  row.simulated = sim.now() - kSimStart;
  return row;
}

}  // namespace

int main() {
  bench::PerfReport perf("table1_chipsets");
  bench::header("Table 1", "Polite WiFi across chipsets/devices");

  std::vector<scenario::ChipsetProfile> profiles = scenario::table1_devices();
  profiles.push_back(scenario::esp8266());

  // Touch the shared immutable singletons before fanning out workers.
  scenario::OuiDatabase::instance();

  const sim::SweepRunner runner;
  const std::vector<Row> rows = runner.run_indexed(
      profiles.size(),
      [&](std::size_t i) { return attack_device(profiles[i], 100 + i); });

  std::printf("\n  %-22s %-20s %-9s %-7s %-10s\n", "Device", "WiFi module",
              "Standard", "Band", "ACKs/fakes");
  std::printf("  %-22s %-20s %-9s %-7s %-10s\n", "------", "-----------",
              "--------", "----", "----------");

  bool all_polite = true;
  for (const Row& row : rows) {
    std::printf("  %-22s %-20s %-9s %-7s %d/%d %s\n",
                row.profile.device_name.c_str(),
                row.profile.wifi_module.c_str(), row.profile.standard.c_str(),
                phy::band_name(row.profile.band), row.acks, row.fakes,
                row.acks == row.fakes ? "POLITE" : "(!)");
    all_polite = all_polite && row.acks == row.fakes;
    perf.add_events(row.events, row.simulated);
  }

  bench::section("results");
  bench::compare("devices showing Polite WiFi", "5/5 (all tested)",
                 all_polite ? "6/6 (all tested, incl. ESP8266)" : "NOT ALL");
  perf.note("threads", runner.threads());
  perf.note("devices", double(rows.size()));
  perf.finish();
  return all_polite ? 0 : 1;
}
