// Extension: the countermeasure study the paper leaves to future work.
//
// Part 1 — detection: how fast does a monitor flag each attack class
// (sensing poll, battery drain, wardriving sweep, deauth flood)?
//
// Part 2 — mitigation ablation: the battery-drain attack against an
// unguarded victim vs one running defense::BatteryGuard (duty-cycled
// radio). The guard cannot stop the ACKs — nothing can (§2.2) — but a
// deaf radio sends none, trading reachability for battery.
#include "bench_util.h"
#include "core/battery_attack.h"
#include "core/injector.h"
#include "core/monitor.h"
#include "defense/battery_guard.h"
#include "defense/injection_detector.h"
#include "sim/network.h"

using namespace politewifi;

namespace {

constexpr MacAddress kApMac{0xf2, 0x6e, 0x0b, 0x01, 0x02, 0x03};
constexpr MacAddress kVictimMac{0x24, 0x0a, 0xc4, 0xaa, 0xbb, 0xcc};
constexpr MacAddress kAttackerMac{0x02, 0xde, 0xad, 0xbe, 0xef, 0x08};

double detection_latency(double attack_pps, defense::ThreatKind expected,
                         bench::PerfReport& perf) {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 92});
  mac::ApConfig apc;
  apc.fast_keys = true;
  sim.add_ap("ap", kApMac, {0, 0}, apc);
  mac::ClientConfig cc;
  cc.fast_keys = true;
  sim::Device& victim = sim.add_client("victim", kVictimMac, {4, 0}, cc);
  sim::RadioConfig rig;
  rig.position = {8, 2};
  sim::Device& attacker = sim.add_device(
      {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
      kAttackerMac, rig);
  sim.establish(victim, seconds(10));

  // The guard node: a monitor next to the AP running the detector.
  sim::RadioConfig guard_rc;
  guard_rc.position = {1, 1};
  sim::Device& guard_node = sim.add_device(
      {.name = "guard", .kind = sim::DeviceKind::kSniffer},
      {0x02, 0x99, 0x99, 0x99, 0x99, 0x99}, guard_rc);
  core::MonitorHub hub(guard_node.station());
  defense::InjectionDetector detector;
  detector.mark_trusted(kApMac);
  detector.mark_trusted(kVictimMac);
  std::optional<TimePoint> detected_at;
  hub.add_tap([&](const frames::Frame& f, const phy::RxVector&, bool ok) {
    if (!ok) return;
    for (const auto& alert : detector.observe(f, sim.now())) {
      // An attack may raise escalating alerts (a drain first crosses the
      // sensing threshold); time the one we are asking about.
      if (!detected_at && alert.kind == expected) {
        detected_at = alert.raised_at;
      }
    }
  });

  core::FakeFrameInjector injector(attacker);
  const TimePoint attack_start = sim.now();
  injector.start_stream(kVictimMac, attack_pps);
  sim.run_for(seconds(5));
  injector.stop_all();

  perf.add_events(sim.scheduler().events_executed(), sim.now() - kSimStart);
  if (!detected_at) return -1.0;
  return to_seconds(*detected_at - attack_start);
}

}  // namespace

int main() {
  bench::PerfReport perf("defense");
  bench::header("Defense (extension)", "detection + mitigation ablation");

  bench::section("part 1: detection latency by attack class");
  std::printf("  %-22s %-12s %-14s\n", "attack", "rate (pps)",
              "detected after");
  {
    const double t1 =
        detection_latency(150.0, defense::ThreatKind::kSensingPoll, perf);
    std::printf("  %-22s %-12.0f %.2f s\n", "CSI sensing poll", 150.0, t1);
    const double t2 =
        detection_latency(900.0, defense::ThreatKind::kBatteryDrain, perf);
    std::printf("  %-22s %-12.0f %.2f s\n", "battery drain", 900.0, t2);
  }

  bench::section("part 2: battery-drain mitigation ablation (900 pps)");
  auto run_case = [&perf](bool guarded) {
    sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 93});
    mac::ApConfig apc;
    apc.fast_keys = true;
    sim.add_ap("ap", kApMac, {0, 0}, apc);
    mac::ClientConfig cc;
    cc.fast_keys = true;
    cc.power_save = true;
    cc.idle_timeout = milliseconds(100);
    cc.beacon_wake_window = milliseconds(1);
    sim::Device& victim = sim.add_client("esp8266", kVictimMac, {4, 0}, cc);
    sim::RadioConfig rig;
    rig.position = {8, 2};
    sim::Device& attacker = sim.add_device(
        {.name = "attacker", .kind = sim::DeviceKind::kAttacker},
        kAttackerMac, rig);
    sim.establish(victim, seconds(10));

    std::unique_ptr<defense::BatteryGuard> guard;
    if (guarded) {
      guard = std::make_unique<defense::BatteryGuard>(sim.scheduler(), victim);
      guard->start();
    }

    core::FakeFrameInjector injector(attacker);
    injector.start_stream(kVictimMac, 900.0);
    sim.run_for(seconds(5));  // let the guard engage
    victim.radio().energy().reset(sim.now());
    const auto acks_before = victim.station().stats().acks_sent;
    sim.run_for(seconds(25));
    injector.stop_all();

    struct Out {
      double mw;
      std::uint64_t acks;
      bool engaged;
    };
    perf.add_events(sim.scheduler().events_executed(), sim.now() - kSimStart);
    return Out{victim.radio().energy().average_mw(sim.now()),
               victim.station().stats().acks_sent - acks_before,
               guard ? guard->engaged() : false};
  };

  const auto unguarded = run_case(false);
  const auto guarded = run_case(true);

  std::printf("  %-30s %-14s %-14s\n", "metric", "unguarded", "guarded");
  std::printf("  %-30s %-14.1f %-14.1f\n", "mean power (mW)", unguarded.mw,
              guarded.mw);
  std::printf("  %-30s %-14llu %-14llu\n", "ACKs coerced in 25 s",
              (unsigned long long)unguarded.acks,
              (unsigned long long)guarded.acks);
  std::printf("  %-30s %-14s %-14s\n", "guard engaged", "-",
              guarded.engaged ? "yes" : "no");

  bench::section("battery-life consequence (2400 mWh camera)");
  bench::kvf("unguarded: hours to empty", "%.1f", 2400.0 / unguarded.mw);
  bench::kvf("guarded:   hours to empty", "%.1f", 2400.0 / guarded.mw);
  bench::kv("cost of the defense",
            "device unreachable between 50 ms listen slots");
  bench::kv("what it does NOT do",
            "stop ACKs while awake — that remains impossible (SIFS)");

  const bool ok = unguarded.mw > 250.0 && guarded.mw < unguarded.mw / 4.0 &&
                  guarded.engaged;
  perf.finish();
  return ok ? 0 : 1;
}
