// Extension: non-cooperative localization through ACK time-of-flight —
// the direction the paper's discovery opened (followed up by Wi-Peep,
// "Non-cooperative wi-fi localization & its privacy implications").
//
// The ACK arrives a standard-fixed SIFS after the fake frame, so its
// round-trip time leaks distance. An attacker circling a house (drone,
// car, walk) ranges every device inside from several anchor points and
// trilaterates their positions — through the walls, with no cooperation.
//
// Reports ranging accuracy vs victim SIFS jitter, and end-to-end
// localization error for a 4-device "house".
#include "bench_util.h"
#include "core/localizer.h"
#include "core/ranging.h"

using namespace politewifi;

int main() {
  bench::header("Localization (extension)",
                "ACK time-of-flight ranging + trilateration (Wi-Peep)");

  // --- Part 1: ranging accuracy vs turnaround jitter ------------------------
  bench::section("ranging accuracy vs victim SIFS jitter (60 m link)");
  std::printf("  %-14s %-14s %-14s %-12s\n", "jitter (ns)", "est (m)",
              "bias (m)", "sigma (m)");
  for (const double jitter_ns : {0.0, 50.0, 150.0, 300.0}) {
    sim::Simulation sim(
        {.medium = {.shadowing_sigma_db = 0.0}, .seed = 90});
    mac::MacConfig victim_mac;
    victim_mac.sifs_jitter_ns = jitter_ns;
    sim::RadioConfig rc;
    rc.position = {60.0, 0.0};
    sim.add_device({.name = "victim"}, {0x3c, 0x28, 0x6d, 1, 2, 3}, rc,
                   victim_mac);
    sim::RadioConfig rig;
    sim::Device& attacker = sim.add_device(
        {.name = "ranger", .kind = sim::DeviceKind::kAttacker},
        {0x02, 0xde, 0xad, 0xbe, 0xef, 0x06}, rig);
    core::RttRanger ranger(sim, attacker);
    const auto est = ranger.range({0x3c, 0x28, 0x6d, 1, 2, 3}, 120);
    std::printf("  %-14.0f %-14.2f %-14.2f %-12.2f\n", jitter_ns,
                est.distance_m, est.distance_m - 60.0, est.stddev_m);
  }

  // --- Part 2: localize a whole house from outside -----------------------------
  bench::section("localizing 4 devices in a house from a walk around it");
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 91});

  struct Target {
    const char* name;
    MacAddress mac;
    Position truth;
  };
  const std::vector<Target> targets = {
      {"smart-tv", {0x8c, 0x77, 0x12, 1, 1, 1}, {6.0, 4.0}},
      {"thermostat", {0x44, 0x61, 0x32, 2, 2, 2}, {2.0, 9.0}},
      {"camera", {0x24, 0x0a, 0xc4, 3, 3, 3}, {11.0, 8.0}},
      {"laptop", {0x3c, 0x28, 0x6d, 4, 4, 4}, {9.0, 2.0}},
  };
  mac::MacConfig quirk;
  quirk.sifs_jitter_ns = 120.0;  // realistic silicon
  for (const auto& t : targets) {
    sim::RadioConfig rc;
    rc.position = t.truth;
    sim.add_device({.name = t.name}, t.mac, rc, quirk);
  }

  sim::RadioConfig rig;
  sim::Device& attacker = sim.add_device(
      {.name = "walker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x07}, rig);
  core::RttRanger ranger(sim, attacker);

  // Anchor points around the (roughly 13 x 11 m) house perimeter.
  const std::vector<Position> anchors = {
      {-4, -3}, {7, -4}, {17, -2}, {18, 6}, {16, 13}, {6, 14}, {-4, 12},
      {-5, 5}};

  std::printf("  %-12s %-18s %-18s %-10s\n", "device", "truth (x,y)",
              "estimate (x,y)", "error (m)");
  double worst = 0.0, sum = 0.0;
  for (const auto& t : targets) {
    std::vector<core::RangeObservation> obs;
    for (const auto& anchor : anchors) {
      attacker.radio().set_position(anchor);
      const auto est = ranger.range(t.mac, 30);
      if (est.measurements < 10) continue;
      obs.push_back({anchor, est.distance_m,
                     1.0 / std::max(est.stddev_m * est.stddev_m, 1.0)});
    }
    const auto fix = core::trilaterate(obs);
    const double err = distance(fix.position, t.truth);
    worst = std::max(worst, err);
    sum += err;
    std::printf("  %-12s (%5.1f, %5.1f)     (%5.1f, %5.1f)     %-10.2f\n",
                t.name, t.truth.x, t.truth.y, fix.position.x, fix.position.y,
                err);
  }

  bench::section("summary");
  bench::kvf("mean localization error (m)", "%.2f",
             sum / double(targets.size()));
  bench::kvf("worst localization error (m)", "%.2f", worst);
  bench::kv("victim cooperation required", "none — only politeness");
  // Wi-Peep reports metre-scale errors with cheap hardware; ranging bias
  // from one-sided jitter dominates ours similarly.
  return worst < 10.0 ? 0 : 1;
}
