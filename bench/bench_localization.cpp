// Extension: non-cooperative localization through ACK time-of-flight —
// the direction the paper's discovery opened (followed up by Wi-Peep,
// "Non-cooperative wi-fi localization & its privacy implications").
//
// The ACK arrives a standard-fixed SIFS after the fake frame, so its
// round-trip time leaks distance. An attacker circling a house (drone,
// car, walk) ranges every device inside from several anchor points and
// trilaterates their positions — through the walls, with no cooperation.
//
// Reports ranging accuracy vs victim SIFS jitter, and end-to-end
// localization error for a 4-device "house". Both sweeps fan out across
// PW_THREADS workers (sim::SweepRunner): every jitter point and every
// localized device is an independent, self-seeded simulation, so the
// numbers are bit-identical for any thread count.
#include "bench_util.h"
#include "core/localizer.h"
#include "core/ranging.h"
#include "sim/sweep_runner.h"

using namespace politewifi;

namespace {

struct Target {
  const char* name;
  MacAddress mac;
  Position truth;
};

const std::vector<Target>& house_targets() {
  static const std::vector<Target> targets = {
      {"smart-tv", {0x8c, 0x77, 0x12, 1, 1, 1}, {6.0, 4.0}},
      {"thermostat", {0x44, 0x61, 0x32, 2, 2, 2}, {2.0, 9.0}},
      {"camera", {0x24, 0x0a, 0xc4, 3, 3, 3}, {11.0, 8.0}},
      {"laptop", {0x3c, 0x28, 0x6d, 4, 4, 4}, {9.0, 2.0}},
  };
  return targets;
}

struct RangingPoint {
  double jitter_ns = 0.0;
  core::RangeEstimate est;
  std::uint64_t events = 0;
  Duration simulated{};
};

/// Part 1 worker: ranging accuracy over a single 60 m link.
RangingPoint ranging_accuracy(double jitter_ns) {
  RangingPoint point;
  point.jitter_ns = jitter_ns;
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 90});
  mac::MacConfig victim_mac;
  victim_mac.sifs_jitter_ns = jitter_ns;
  sim::RadioConfig rc;
  rc.position = {60.0, 0.0};
  sim.add_device({.name = "victim"}, {0x3c, 0x28, 0x6d, 1, 2, 3}, rc,
                 victim_mac);
  sim::RadioConfig rig;
  sim::Device& attacker = sim.add_device(
      {.name = "ranger", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x06}, rig);
  core::RttRanger ranger(sim, attacker);
  point.est = ranger.range({0x3c, 0x28, 0x6d, 1, 2, 3}, 120);
  point.events = sim.scheduler().events_executed();
  point.simulated = sim.now() - kSimStart;
  return point;
}

struct Fix {
  Position position;
  double error_m = 0.0;
  std::uint64_t events = 0;
  Duration simulated{};
};

/// Part 2 worker: localize one house device from a walk around the house.
/// The whole house is present in each worker's simulation (neighbouring
/// radios are part of the RF environment), but each worker only walks the
/// perimeter for its own target.
Fix localize_target(std::size_t target_index) {
  sim::Simulation sim({.medium = {.shadowing_sigma_db = 0.0}, .seed = 91});
  mac::MacConfig quirk;
  quirk.sifs_jitter_ns = 120.0;  // realistic silicon
  for (const auto& t : house_targets()) {
    sim::RadioConfig rc;
    rc.position = t.truth;
    sim.add_device({.name = t.name}, t.mac, rc, quirk);
  }

  sim::RadioConfig rig;
  sim::Device& attacker = sim.add_device(
      {.name = "walker", .kind = sim::DeviceKind::kAttacker},
      {0x02, 0xde, 0xad, 0xbe, 0xef, 0x07}, rig);
  core::RttRanger ranger(sim, attacker);

  // Anchor points around the (roughly 13 x 11 m) house perimeter.
  const std::vector<Position> anchors = {
      {-4, -3}, {7, -4}, {17, -2}, {18, 6}, {16, 13}, {6, 14}, {-4, 12},
      {-5, 5}};

  const Target& t = house_targets()[target_index];
  std::vector<core::RangeObservation> obs;
  for (const auto& anchor : anchors) {
    attacker.radio().set_position(anchor);
    const auto est = ranger.range(t.mac, 30);
    if (est.measurements < 10) continue;
    obs.push_back({anchor, est.distance_m,
                   1.0 / std::max(est.stddev_m * est.stddev_m, 1.0)});
  }
  Fix fix;
  fix.position = core::trilaterate(obs).position;
  fix.error_m = distance(fix.position, t.truth);
  fix.events = sim.scheduler().events_executed();
  fix.simulated = sim.now() - kSimStart;
  return fix;
}

}  // namespace

int main() {
  bench::PerfReport perf("localization");
  bench::header("Localization (extension)",
                "ACK time-of-flight ranging + trilateration (Wi-Peep)");

  const sim::SweepRunner runner;

  // --- Part 1: ranging accuracy vs turnaround jitter ------------------------
  const std::vector<double> jitters{0.0, 50.0, 150.0, 300.0};
  const std::vector<RangingPoint> points = runner.run_indexed(
      jitters.size(), [&](std::size_t i) { return ranging_accuracy(jitters[i]); });

  bench::section("ranging accuracy vs victim SIFS jitter (60 m link)");
  std::printf("  %-14s %-14s %-14s %-12s\n", "jitter (ns)", "est (m)",
              "bias (m)", "sigma (m)");
  for (const auto& p : points) {
    std::printf("  %-14.0f %-14.2f %-14.2f %-12.2f\n", p.jitter_ns,
                p.est.distance_m, p.est.distance_m - 60.0, p.est.stddev_m);
    perf.add_events(p.events, p.simulated);
  }

  // --- Part 2: localize a whole house from outside -----------------------------
  bench::section("localizing 4 devices in a house from a walk around it");
  const std::vector<Fix> fixes = runner.run_indexed(
      house_targets().size(), [](std::size_t i) { return localize_target(i); });

  std::printf("  %-12s %-18s %-18s %-10s\n", "device", "truth (x,y)",
              "estimate (x,y)", "error (m)");
  double worst = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < fixes.size(); ++i) {
    const Target& t = house_targets()[i];
    const Fix& fix = fixes[i];
    worst = std::max(worst, fix.error_m);
    sum += fix.error_m;
    std::printf("  %-12s (%5.1f, %5.1f)     (%5.1f, %5.1f)     %-10.2f\n",
                t.name, t.truth.x, t.truth.y, fix.position.x, fix.position.y,
                fix.error_m);
    perf.add_events(fix.events, fix.simulated);
  }

  bench::section("summary");
  bench::kvf("mean localization error (m)", "%.2f",
             sum / double(fixes.size()));
  bench::kvf("worst localization error (m)", "%.2f", worst);
  bench::kv("victim cooperation required", "none — only politeness");
  // Wi-Peep reports metre-scale errors with cheap hardware; ranging bias
  // from one-sided jitter dominates ours similarly.
  perf.note("threads", runner.threads());
  perf.finish();
  return worst < 10.0 ? 0 : 1;
}
