#!/usr/bin/env python3
"""pw_analyze — AST-grade static analysis for the politewifi tree.

Where tools/pw_lint.py is a token linter (fast, zero context), this tool
understands structure: the include/decl-use graph between modules, the
types behind range-for statements, and the transitive call graph under
hot-path roots. Four checks:

  layering             Module dependencies must follow the DAG below
                       (ALLOWED_DEPS), derived from both #include edges
                       and qualified-name (decl-use) edges. The
                       allowlist ships empty: violations get fixed, or
                       carry an inline justification.
  unordered-iteration  Type-aware replacement for the retired pw_lint
                       regex rule: a range-for whose range expression
                       *resolves* (through auto, typedefs, members,
                       find()-iterators, ->second) to an unordered
                       container is flagged. Hash order must never feed
                       the deterministic event stream.
  hot-purity           Functions marked PW_HOT (common/annotations.h)
                       are roots of a transitive call-graph walk; heap
                       allocation (hot-new), throw (hot-throw), lock
                       acquisition (hot-lock) and wall-clock reads
                       (hot-clock) anywhere under them are violations.
  guarded-by           Portable shadow of clang -Wthread-safety: a
                       member function touching a PW_GUARDED_BY(m)
                       field must hold m (a lock constructed on m in
                       the body, or the function annotated
                       PW_REQUIRES(m)). The clang CI job is the
                       authoritative gate; this keeps GCC-only
                       environments honest.
  design-sync          DESIGN.md's mermaid layering diagram must match
                       ALLOWED_DEPS edge-for-edge (only runs when the
                       analysis root has a DESIGN.md).

Backends: `--backend builtin` (default) is a dependency-free C++
scanner — scope-tracking tokenizer, good enough for this codebase and
the fixture suite, runs under plain python3. `--backend libclang` uses
clang.cindex over compile_commands.json (-p BUILDDIR) for exact AST
facts; CI's analyze job runs it. Both feed the same check logic.

Suppressions: `// pw-analyze: allow(rule): justification` on the
offending line or in the comment block directly above it — the
justification text is mandatory. File-level entries live in
tools/pw_analyze_allowlist.txt (same `path:rule  # why` format as the
pw_lint allowlist; unused entries are errors, so it only shrinks).

Usage:
  python3 tools/pw_analyze.py                      # whole tree, builtin
  python3 tools/pw_analyze.py -p build --backend=libclang
  python3 tools/pw_analyze.py --root tests/analyze/fixtures/clean
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# --- The enforced layering DAG -----------------------------------------
# Keys are modules (directories under src/); values are the modules each
# may depend on *directly* (self and std/system headers are implicit).
# obs sits at tier 1 as the instrumentation rail: PW_COUNT/PW_TIMEIT
# must be usable from phy/frames/mac/sim, so obs may depend only on
# common and everything above may depend on obs. DESIGN.md's layering
# diagram mirrors this table edge-for-edge (the design-sync check
# enforces that), and runtime is the composition root.
ALLOWED_DEPS = {
    "common": [],
    "obs": ["common"],
    "phy": ["common", "obs"],
    "frames": ["common", "obs"],
    "crypto": ["common", "frames"],
    "mac": ["common", "obs", "phy", "frames", "crypto"],
    "sim": ["common", "obs", "phy", "frames", "crypto", "mac"],
    "sensing": ["common", "phy"],
    "scenario": ["common", "phy", "mac", "sim"],
    "defense": ["common", "frames", "sim"],
    "core": ["common", "phy", "frames", "mac", "sim", "scenario"],
    "runtime": [
        "common", "obs", "phy", "frames", "crypto", "mac", "sim",
        "sensing", "scenario", "defense", "core",
    ],
}

MODULES = set(ALLOWED_DEPS)

RULES = {
    "layering",
    "unordered-iteration",
    "hot-new",
    "hot-throw",
    "hot-lock",
    "hot-clock",
    "guarded-by",
    "design-sync",
}

KEYWORDS = {
    "if", "for", "while", "switch", "do", "else", "return", "sizeof",
    "decltype", "alignof", "alignas", "static_assert", "new", "delete",
    "throw", "catch", "case", "default", "break", "continue", "goto",
    "co_await", "co_return", "co_yield", "noexcept", "typeid", "const",
    "constexpr", "consteval", "constinit", "static", "inline", "virtual",
    "explicit", "friend", "mutable", "volatile", "register", "extern",
    "typename", "template", "using", "typedef", "operator", "public",
    "private", "protected", "class", "struct", "union", "enum",
    "namespace", "auto", "void", "bool", "char", "short", "int", "long",
    "float", "double", "signed", "unsigned", "true", "false", "nullptr",
    "this", "try", "requires", "concept", "final", "override",
}

ALLOC_CALLEES = {
    "make_unique", "make_shared", "malloc", "calloc", "realloc", "free",
    "strdup", "aligned_alloc",
}
LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock",
              "MutexLock"}
LOCK_METHODS = {"lock", "unlock", "try_lock", "lock_shared",
                "unlock_shared"}
CLOCK_TOKENS = {"steady_clock", "system_clock", "high_resolution_clock",
                "clock_gettime", "gettimeofday", "PW_TIMEIT"}

ALLOW_RE = re.compile(r"//\s*pw-analyze:\s*allow\(([\w-]+)\)\s*[:—-]?\s*(.*)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)

_TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^!~<>=.,;:?(){}\[\]#\\'\"@$`]"
)


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal *contents* with spaces,
    preserving line structure so token positions stay accurate. The
    comment text is lost here; allow-markers are read from raw lines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            # Raw strings R"tag( ... )tag"
            if quote == '"' and i > 0 and text[i - 1] == "R":
                m = re.match(r'R"([^(]*)\(', text[i - 1:])
                if m:
                    end = text.find(")" + m.group(1) + '"', i)
                    j = n if end == -1 else end + len(m.group(1)) + 2
                    chunk = text[i:j]
                    out.append('"' + "".join(
                        "\n" if ch == "\n" else " " for ch in chunk[1:-1]) +
                        '"' if len(chunk) >= 2 else chunk)
                    i = j
                    continue
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                if text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * max(0, j - i - 2) +
                       (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(code):
    """Yields (token, line) over comment/string-stripped code."""
    toks = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        toks.append((m.group(0), line))
    return toks


class FunctionFact:
    def __init__(self, path, module, cls, name, line):
        self.path = path
        self.module = module
        self.cls = cls          # enclosing or explicit class name, or None
        self.name = name
        self.line = line
        self.is_hot = False
        self.requires = set()   # capability names from PW_REQUIRES
        self.ret_type = ""
        self.params_text = ""
        self.body_text = ""
        self.body_line = line
        self.events = []        # (rule, line, detail)
        self.calls = []         # (receiver_token|None, qualifier|None, name, line)
        self.ranges = []        # (range_expr_tokens_text, line)

    @property
    def qual(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


class ClassFact:
    def __init__(self, path, module, name):
        self.path = path
        self.module = module
        self.name = name
        self.members = {}        # name -> type string
        self.guards = {}         # member name -> capability name
        self.aliases = {}        # using X = Y;
        self.method_requires = {}  # method name -> set(capabilities)


class FileFacts:
    def __init__(self, path, module):
        self.path = path
        self.module = module
        self.includes = []       # (line, target_module, header)
        self.decl_uses = []      # (line, target_module)
        self.functions = []
        self.classes = []
        self.aliases = {}        # file-scope using aliases
        self.globals_text = ""   # namespace-scope text for decl lookup


# ----------------------------------------------------------------------
# Builtin extractor: a forward scanner with a scope stack. Not a C++
# parser — a disciplined heuristic tuned to this codebase's (clang-
# format enforced) style, with libclang as the exact backend in CI.
# ----------------------------------------------------------------------

def _chunk_is_class(toks):
    depth = 0
    for t, _ in toks:
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
        elif depth == 0 and t in ("class", "struct", "union"):
            return True
        elif depth == 0 and t == "enum":
            return False
        elif depth == 0 and t == "=":
            return False
    return False


def _class_name(toks):
    """Name of the class introduced by this chunk: the last plain
    identifier before the base-clause colon / end, skipping attribute
    macros like PW_CAPABILITY("mutex")."""
    seen = None
    i = 0
    n = len(toks)
    started = False
    while i < n:
        t = toks[i][0]
        if t in ("class", "struct", "union"):
            started = True
            i += 1
            continue
        if not started:
            i += 1
            continue
        if t == ":":
            break
        if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS:
            if i + 1 < n and toks[i + 1][0] == "(":
                depth = 0
                while i < n:  # skip macro-call group
                    if toks[i][0] == "(":
                        depth += 1
                    elif toks[i][0] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
            else:
                seen = t
        i += 1
    return seen


def _function_from_chunk(toks, path, module, enclosing_class):
    """If the chunk (tokens between the last boundary and a '{') looks
    like a function definition header, returns (FunctionFact, name_idx);
    else None. Recognizes `Ret Cls::name(args) quals [: init-list]`."""
    depth = 0
    name_idx = None
    for i, (t, _line) in enumerate(toks):
        if t == "(":
            if depth == 0 and i > 0:
                j = i - 1
                name = toks[j][0]
                if name == "]":  # lambda at namespace scope: not tracked
                    return None
                if name in (">", ")"):
                    continue
                if not re.match(r"[A-Za-z_]\w*$", name):
                    depth += 1
                    continue
                if name in KEYWORDS and name != "operator":
                    depth += 1
                    continue
                # operator overloads: name token is the symbol after
                # 'operator'; normalize.
                if j > 0 and toks[j - 1][0] == "operator":
                    name = "operator" + name
                    j -= 1
                elif name == "operator":
                    return None
                # All-caps idents followed by '(' at chunk level are
                # macro invocations (PW_*, GTEST...), unless qualified.
                if (re.fullmatch(r"[A-Z][A-Z0-9_]+", name)
                        and (j == 0 or toks[j - 1][0] != "::")):
                    depth += 1
                    continue
                name_idx = j
                break
            depth += 1
        elif t == ")":
            depth -= 1
    if name_idx is None:
        return None
    # '=' before the name at depth 0 → a variable initialization.
    d = 0
    for t, _line in toks[:name_idx]:
        if t == "(":
            d += 1
        elif t == ")":
            d -= 1
        elif d == 0 and t == "=":
            return None
    # Explicit class qualifier: Cls::name
    cls = enclosing_class
    k = name_idx
    while k >= 2 and toks[k - 1][0] == "::":
        cls = toks[k - 2][0]
        k -= 2
    raw_name = toks[name_idx][0]
    if raw_name.startswith("operator") is False and toks[name_idx][0] != raw_name:
        raw_name = toks[name_idx][0]
    fn = FunctionFact(path, module, cls, raw_name, toks[name_idx][1])
    if name_idx > 0 and toks[name_idx - 1][0] == "operator":
        fn.name = "operator" + raw_name
    chunk_tokens = [t for t, _ in toks]
    fn.is_hot = "PW_HOT" in chunk_tokens
    # Return type: tokens before the (possibly qualified) name, minus
    # specifiers and template intros.
    rt = []
    stop = k
    skip_depth = 0
    for t, _line in toks[:stop]:
        if t == "<":
            skip_depth += 1
        elif t == ">":
            skip_depth = max(0, skip_depth - 1)
        if skip_depth:
            rt.append(t)
            continue
        if t in ("template", "typename", "static", "inline", "virtual",
                 "explicit", "constexpr", "friend", "PW_HOT", "const"):
            continue
        rt.append(t)
    fn.ret_type = " ".join(rt).replace(" :: ", "::").strip()
    # PW_REQUIRES on the definition (usually only on declarations).
    fn.requires |= _parse_requires(toks)
    return fn


def _parse_requires(toks):
    caps = set()
    for i, (t, _line) in enumerate(toks):
        if t in ("PW_REQUIRES", "PW_REQUIRES_SHARED") and \
                i + 1 < len(toks) and toks[i + 1][0] == "(":
            depth = 0
            for t2, _l in toks[i + 1:]:
                if t2 == "(":
                    depth += 1
                elif t2 == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif depth == 1 and re.match(r"[A-Za-z_]\w*$", t2):
                    caps.add(t2)
    return caps


_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+)*"
    r"(?P<type>[A-Za-z_][\w:]*(?:\s*<.*>)?)\s*[&*]*\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:PW_GUARDED_BY\s*\(\s*(?P<guard>[A-Za-z_]\w*)\s*\))?\s*"
    r"(?:=[^;]*|\{[^;]*\})?\s*;\s*$")

_USING_RE = re.compile(
    r"^\s*using\s+([A-Za-z_]\w*)\s*=\s*([^;]+);", re.MULTILINE)


def _scan_member_decl(stmt_text, cls, toks):
    """Parses one class-scope statement: member variable (with optional
    guard), alias, or method declaration carrying PW_REQUIRES."""
    # The first statement after an access label arrives as one chunk
    # ("private : Type name ;") — peel the label off before matching.
    stmt_text = re.sub(
        r"^\s*(?:public|private|protected)\s*:\s*", "", stmt_text)
    m = _USING_RE.match(stmt_text.strip())
    if m:
        cls.aliases[m.group(1)] = m.group(2).strip()
        return
    m = _MEMBER_RE.match(stmt_text.replace("\n", " "))
    if m and m.group("type") not in ("return", "using", "namespace"):
        cls.members[m.group("name")] = m.group("type").strip()
        if m.group("guard"):
            cls.guards[m.group("name")] = m.group("guard")
        return
    if "(" in stmt_text:
        # Method declaration: record PW_REQUIRES against the name.
        caps = _parse_requires(toks)
        if caps:
            for i, (t, _l) in enumerate(toks):
                if t == "(" and i > 0 and \
                        re.match(r"[A-Za-z_]\w*$", toks[i - 1][0]) and \
                        toks[i - 1][0] not in KEYWORDS and \
                        not re.fullmatch(r"PW_\w+", toks[i - 1][0]):
                    cls.method_requires.setdefault(
                        toks[i - 1][0], set()).update(caps)
                    break


def _extract_body_facts(fn, toks, code_text):
    """Records purity events, calls, and range-fors from body tokens."""
    n = len(toks)
    i = 0
    while i < n:
        t, line = toks[i][0], toks[i][1]
        prev = toks[i - 1][0] if i > 0 else ""
        nxt = toks[i + 1][0] if i + 1 < n else ""
        if t == "new" and prev not in ("=", "operator"):
            fn.events.append(("hot-new", line, "operator new"))
        elif t == "delete" and prev not in ("=", "operator") and \
                nxt not in (";", ",", ")"):
            fn.events.append(("hot-new", line, "operator delete"))
        elif t == "throw" and prev != "operator":
            fn.events.append(("hot-throw", line, "throw"))
        elif t in LOCK_TYPES:
            fn.events.append(("hot-lock", line, t))
        elif t in CLOCK_TOKENS:
            fn.events.append(("hot-clock", line, t))
        elif t == "for" and nxt == "(":
            j = i + 1
            depth = 0
            inner = []
            while j < n:
                if toks[j][0] == "(":
                    depth += 1
                elif toks[j][0] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                if depth >= 1 and not (depth == 1 and toks[j][0] in "()"):
                    inner.append(toks[j])
                j += 1
            semis = [k for k, (tt, _l) in enumerate(inner)
                     if tt == ";" ]
            if not semis:
                colon = None
                d2 = 0
                for k, (tt, _l) in enumerate(inner):
                    if tt in ("(", "<", "["):
                        d2 += 1
                    elif tt in (")", ">", "]"):
                        d2 -= 1
                    elif tt == ":" and d2 <= 0 and \
                            (k == 0 or inner[k - 1][0] != ":") and \
                            (k + 1 >= len(inner) or inner[k + 1][0] != ":"):
                        colon = k
                if colon is not None:
                    rng = inner[colon + 1:]
                    fn.ranges.append((rng, line))
            i = j
            continue
        if re.match(r"[A-Za-z_]\w*$", t) and nxt == "(" and t not in KEYWORDS:
            if prev in (".", "->"):
                recv = toks[i - 2][0] if i >= 2 else None
                if recv is not None and not re.match(r"[A-Za-z_]\w*$", recv):
                    recv = None
                if t in LOCK_METHODS:
                    fn.events.append(("hot-lock", line, f".{t}()"))
                else:
                    fn.calls.append((recv, None, t, line))
            elif prev == "::":
                qual = toks[i - 2][0] if i >= 2 else None
                if t == "lock":
                    fn.events.append(("hot-lock", line, "std::lock"))
                elif t == "time" and qual == "std":
                    fn.events.append(("hot-clock", line, "std::time"))
                else:
                    fn.calls.append((None, qual, t, line))
            else:
                # `Type name(args)` is a declaration, not a call: the
                # token before the name is an identifier (or a closing
                # template '>'), never an operator.
                if (re.match(r"[A-Za-z_]\w*$", prev)
                        and prev not in KEYWORDS) or prev == ">":
                    i += 1
                    continue
                if t in ALLOC_CALLEES:
                    fn.events.append(("hot-new", line, t))
                else:
                    fn.calls.append((None, None, t, line))
        i += 1
    # Callee names reached via member/qualified calls can also allocate.
    for recv, qual, name, line in fn.calls:
        if name in ALLOC_CALLEES:
            fn.events.append(("hot-new", line, name))


def extract_file_builtin(path, root):
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    module = rel.split("/")[1] if rel.startswith("src/") and \
        len(rel.split("/")) > 2 else None
    raw = open(path, encoding="utf-8", errors="replace").read()
    code = strip_comments_and_strings(raw)
    facts = FileFacts(rel, module)

    # Includes (raw text: the include line survives stripping anyway).
    pos = 0
    for m in INCLUDE_RE.finditer(raw):
        line = raw.count("\n", 0, m.start()) + 1
        header = m.group(1)
        first = header.split("/")[0]
        if first in MODULES:
            facts.includes.append((line, first, header))

    # Decl-use: qualified-name references to other modules.
    for m in re.finditer(r"\b(" + "|".join(MODULES) + r")\s*::", code):
        line = code.count("\n", 0, m.start()) + 1
        facts.decl_uses.append((line, m.group(1)))

    for m in _USING_RE.finditer(code):
        facts.aliases[m.group(1)] = m.group(2).strip()

    toks = tokenize(code)
    n = len(toks)
    i = 0
    chunk_start = 0
    scope = []  # list of (kind, name_or_ClassFact)

    def enclosing_class():
        for kind, obj in reversed(scope):
            if kind == "class":
                return obj
        return None

    globals_parts = []
    while i < n:
        t, line = toks[i]
        if t == "{":
            chunk = toks[chunk_start:i]
            cls = enclosing_class()
            if any(tt == "namespace" for tt, _l in chunk):
                scope.append(("namespace", None))
                chunk_start = i + 1
                i += 1
                continue
            if _chunk_is_class(chunk):
                name = _class_name(chunk) or "<anon>"
                cf = ClassFact(rel, module, name)
                facts.classes.append(cf)
                scope.append(("class", cf))
                chunk_start = i + 1
                i += 1
                continue
            fn = _function_from_chunk(
                chunk, rel, module,
                cls.name if cls is not None else None)
            if fn is not None:
                # Capture params text for decl-type lookup.
                sig_line_start = chunk[0][1] if chunk else line
                fn.params_text = " ".join(tt for tt, _l in chunk)
                if cls is not None and fn.name in cls.method_requires:
                    fn.requires |= cls.method_requires[fn.name]
                # Consume the whole body.
                depth = 0
                j = i
                body = []
                while j < n:
                    if toks[j][0] == "{":
                        depth += 1
                    elif toks[j][0] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    if depth >= 1:
                        body.append(toks[j])
                    j += 1
                fn.body_line = line
                fn.body_text = " ".join(tt for tt, _l in body)
                _extract_body_facts(fn, body[1:] if body else [], code)
                facts.functions.append(fn)
                if cls is not None:
                    cls.members.setdefault  # no-op; methods aren't members
                i = j + 1
                chunk_start = i
                continue
            scope.append(("other", None))
            chunk_start = i + 1
        elif t == "}":
            if scope:
                scope.pop()
            chunk_start = i + 1
        elif t == ";":
            chunk = toks[chunk_start:i + 1]
            cls = enclosing_class()
            stmt = " ".join(tt for tt, _l in chunk)
            if cls is not None:
                _scan_member_decl(stmt.replace(" :: ", "::"), cls, chunk)
            else:
                globals_parts.append(stmt.replace(" :: ", "::"))
            chunk_start = i + 1
        i += 1
    facts.globals_text = "\n".join(globals_parts)
    return facts


# ----------------------------------------------------------------------
# libclang extractor (CI): exact facts from the AST.
# ----------------------------------------------------------------------

def extract_tree_libclang(root, build_dir, files):
    from clang import cindex  # noqa: imported only for this backend

    index = cindex.Index.create()
    try:
        db = cindex.CompilationDatabase.fromDirectory(build_dir)
    except cindex.CompilationDatabaseError:
        sys.exit(f"pw_analyze: no compile_commands.json in {build_dir}")

    def module_of(path):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        parts = rel.split("/")
        return (rel, parts[1]) if parts[0] == "src" and len(parts) > 2 \
            else (rel, None)

    all_facts = {}

    def facts_for(rel, module):
        if rel not in all_facts:
            all_facts[rel] = FileFacts(rel, module)
        return all_facts[rel]

    UNORDERED_RE = re.compile(r"unordered_(map|set|multimap|multiset)")

    def qual_name(cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def fn_cls(cursor):
        p = cursor.semantic_parent
        if p is not None and p.kind in (
                cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
                cindex.CursorKind.CLASS_TEMPLATE):
            return p.spelling
        return None

    tus = [f for f in files if f.endswith(".cpp")]
    for src in tus:
        cmds = db.getCompileCommands(src)
        if not cmds:
            continue
        args = list(cmds[0].arguments)[1:]
        clean = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-c", "-o"):
                skip = (a == "-o")
                continue
            if a == src or a.endswith(os.path.basename(src)):
                continue
            clean.append(a)
        try:
            tu = index.parse(src, args=clean)
        except cindex.TranslationUnitLoadError as e:
            sys.exit(f"pw_analyze: failed to parse {src}: {e}")
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            sys.exit(f"pw_analyze: {src}: {fatal[0].spelling}")

        def in_tree(cursor):
            loc = cursor.location
            return loc.file is not None and \
                os.path.abspath(loc.file.name).startswith(
                    os.path.join(root, "src"))

        def walk_fn(cursor, fn):
            for ch in cursor.get_children():
                k = ch.kind
                line = ch.location.line
                if k == cindex.CursorKind.CXX_NEW_EXPR:
                    fn.events.append(("hot-new", line, "operator new"))
                elif k == cindex.CursorKind.CXX_DELETE_EXPR:
                    fn.events.append(("hot-new", line, "operator delete"))
                elif k == cindex.CursorKind.CXX_THROW_EXPR:
                    fn.events.append(("hot-throw", line, "throw"))
                elif k == cindex.CursorKind.VAR_DECL:
                    ts = ch.type.spelling
                    if any(lt in ts for lt in LOCK_TYPES):
                        fn.events.append(("hot-lock", line, ts))
                elif k == cindex.CursorKind.CALL_EXPR:
                    ref = ch.referenced
                    if ref is not None:
                        qn = qual_name(ref)
                        base = ref.spelling
                        if base in LOCK_METHODS and "std" not in qn:
                            fn.events.append(("hot-lock", line, qn))
                        elif base in ALLOC_CALLEES:
                            fn.events.append(("hot-new", line, base))
                        elif "chrono" in qn and base == "now":
                            fn.events.append(("hot-clock", line, qn))
                        else:
                            fn.calls.append(
                                (None, fn_cls(ref), base, line))
                elif k == cindex.CursorKind.DECL_REF_EXPR:
                    qn = qual_name(ch.referenced) if ch.referenced else ""
                    if any(ct in qn for ct in CLOCK_TOKENS):
                        fn.events.append(("hot-clock", line, qn))
                elif k == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                    kids = list(ch.get_children())
                    if len(kids) >= 2:
                        rng = kids[-2]
                        ts = rng.type.get_canonical().spelling
                        if UNORDERED_RE.search(ts):
                            fn.ranges.append(
                                ([("<unordered>", ch.location.line)],
                                 ch.location.line))
                            fn.events.append(
                                ("unordered-iteration", ch.location.line,
                                 ts))
                walk_fn(ch, fn)

        def visit(cursor):
            for ch in cursor.get_children():
                if not in_tree(ch):
                    continue
                rel, module = module_of(
                    os.path.abspath(ch.location.file.name))
                k = ch.kind
                if k in (cindex.CursorKind.CXX_METHOD,
                         cindex.CursorKind.FUNCTION_DECL,
                         cindex.CursorKind.CONSTRUCTOR,
                         cindex.CursorKind.DESTRUCTOR) and \
                        ch.is_definition():
                    ff = facts_for(rel, module)
                    fn = FunctionFact(rel, module, fn_cls(ch),
                                      ch.spelling, ch.location.line)
                    for a in ch.get_children():
                        if a.kind == cindex.CursorKind.ANNOTATE_ATTR and \
                                a.spelling == "pw_hot":
                            fn.is_hot = True
                    walk_fn(ch, fn)
                    ff.functions.append(fn)
                elif k in (cindex.CursorKind.CLASS_DECL,
                           cindex.CursorKind.STRUCT_DECL) and \
                        ch.is_definition():
                    ff = facts_for(rel, module)
                    cf = ClassFact(rel, module, ch.spelling)
                    for f in ch.get_children():
                        if f.kind == cindex.CursorKind.FIELD_DECL:
                            cf.members[f.spelling] = f.type.spelling
                    ff.classes.append(cf)
                    visit(ch)
                else:
                    visit(ch)

        visit(tu.cursor)

    # Includes and decl-use stay textual (exact enough, and libclang's
    # preprocessing record is noisy across headers).
    for f in files:
        rel, module = module_of(f)
        ff = facts_for(rel, module)
        builtin = extract_file_builtin(f, root)
        ff.includes = builtin.includes
        ff.decl_uses = builtin.decl_uses
        # Guards/aliases come from the builtin scan too: annotate
        # attributes on fields are macro-expanded identically.
        for c in builtin.classes:
            ff.classes.append(c)
        ff.aliases.update(builtin.aliases)
        # Unordered-iteration events were attached inline above; also
        # reuse the builtin range resolution for headers (libclang only
        # parsed .cpp TUs).
        if f.endswith(".h"):
            ff.functions.extend(builtin.functions)
    return list(all_facts.values())


# ----------------------------------------------------------------------
# Suppression bookkeeping
# ----------------------------------------------------------------------

class Suppressions:
    def __init__(self, root, allowlist_path):
        self.root = root
        self.inline = {}        # path -> {line: (rule, has_reason)}
        self.file_rules = {}    # (path, rule) -> justification
        self.used = set()
        self.errors = []
        if allowlist_path and os.path.exists(allowlist_path):
            for ln, line in enumerate(
                    open(allowlist_path, encoding="utf-8"), 1):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                m = re.match(r"([^\s:]+):([\w-]+)\s+#\s*(.+)", stripped)
                if not m:
                    self.errors.append(
                        f"{allowlist_path}:{ln}: [allowlist-syntax] "
                        f"expected 'path:rule  # justification'")
                    continue
                self.file_rules[(m.group(1), m.group(2))] = m.group(3)

    def load_file(self, path, rel):
        lines = {}
        for ln, line in enumerate(open(path, encoding="utf-8",
                                       errors="replace"), 1):
            m = ALLOW_RE.search(line)
            if m:
                rule, reason = m.group(1), m.group(2).strip()
                if not reason:
                    self.errors.append(
                        f"{rel}:{ln}: [allow-missing-justification] inline "
                        f"allow({rule}) must say why")
                lines[ln] = rule
        self.inline[rel] = lines

    def allows(self, rel, line, rule, raw_lines=None):
        if (rel, rule) in self.file_rules:
            self.used.add((rel, rule))
            return True
        marks = self.inline.get(rel, {})
        # Same line, or the contiguous comment block directly above.
        if marks.get(line) == rule:
            return True
        ln = line - 1
        while ln > 0:
            if marks.get(ln) == rule:
                return True
            text = (raw_lines[ln - 1].strip() if raw_lines and
                    ln - 1 < len(raw_lines) else "")
            if not (text.startswith("//") or text == ""):
                break
            if text == "":
                break
            ln -= 1
        return False

    def unused_entries(self):
        return [(p, r, why) for (p, r), why in self.file_rules.items()
                if (p, r) not in self.used]


# ----------------------------------------------------------------------
# Type resolution for the unordered-iteration check (builtin facts)
# ----------------------------------------------------------------------

UNORDERED_TYPE_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")


class Resolver:
    def __init__(self, files):
        self.files = {f.path: f for f in files}
        self.classes = {}
        self.funcs_by_name = {}
        self.global_aliases = {}
        for f in files:
            for c in f.classes:
                self.classes.setdefault(c.name, []).append(c)
                for a, ty in c.aliases.items():
                    self.global_aliases.setdefault(a, ty)
            for a, ty in f.aliases.items():
                self.global_aliases.setdefault(a, ty)
            for fn in f.functions:
                self.funcs_by_name.setdefault(fn.name, []).append(fn)
        # PW_REQUIRES usually sits on the in-class declaration (the
        # header); fold it onto out-of-line definitions.
        for f in files:
            for fn in f.functions:
                if fn.cls is None:
                    continue
                for c in self.classes.get(fn.cls, []):
                    fn.requires |= c.method_requires.get(fn.name, set())

    # -- helpers --

    def expand(self, type_str, fn):
        """Expands using-aliases until fixpoint (bounded)."""
        if not type_str:
            return type_str
        for _ in range(8):
            t = type_str.strip()
            t = re.sub(r"^(const|typename|mutable|static)\s+", "", t)
            t = t.rstrip("&* ")
            base = t.split("<")[0].strip()
            last = base.split("::")[-1].strip()
            repl = None
            cls = self._class_of_fn(fn)
            if cls is not None and last in cls.aliases:
                repl = cls.aliases[last]
            elif last in self.global_aliases:
                repl = self.global_aliases[last]
            if repl is None or repl.split("<")[0].strip().split("::")[-1] \
                    == last:
                return t
            type_str = repl
        return type_str

    def _class_of_fn(self, fn):
        if fn is None or fn.cls is None:
            return None
        cands = self.classes.get(fn.cls, [])
        for c in cands:
            if c.module == fn.module:
                return c
        return cands[0] if cands else None

    def _find_decl_type(self, name, fn):
        """Searches body, params, class members, then file globals for a
        declaration of `name`, returning its type string."""
        texts = []
        if fn is not None:
            texts.append(fn.body_text)
            texts.append(fn.params_text)
        cls = self._class_of_fn(fn)
        if cls is not None and name in cls.members:
            return cls.members[name]
        ffile = self.files.get(fn.path) if fn is not None else None
        if ffile is not None:
            texts.append(ffile.globals_text)
        for text in texts:
            ty = _decl_type_in_text(text, name)
            if ty == "auto" and fn is not None:
                rhs = _auto_rhs(fn.body_text, name)
                if rhs:
                    return self.resolve_expr_text(rhs, fn)
                return None
            if ty:
                return ty
        # Structured binding in a range-for: `[k, v] : container` binds
        # k to the key type and v to the mapped type.
        if fn is not None:
            for pat, pick in (
                    (r"\[\s*\w+\s*,\s*" + re.escape(name) +
                     r"\s*\]\s*:\s*([^)]+?)\)", _map_mapped_type),
                    (r"\[\s*" + re.escape(name) +
                     r"\s*,\s*\w+\s*\]\s*:\s*([^)]+?)\)", _map_key_type)):
                m = re.search(pat, fn.body_text)
                if m:
                    cont = self.resolve_expr_text(m.group(1), fn)
                    if cont:
                        return pick(self.expand(cont, fn))
        return None

    def _method_ret(self, cls_name, method, fn):
        for cand in self.funcs_by_name.get(method, []):
            if cls_name is None or cand.cls == cls_name:
                if cand.ret_type and cand.ret_type != "auto":
                    return cand.ret_type
        # Method declared in a class body but defined elsewhere: search
        # the class's member-decl text? Skipped: best-effort.
        return None

    def resolve_expr_text(self, expr, fn):
        toks = [t for t in _TOKEN_RE.findall(expr)]
        return self.resolve_expr(toks, fn)

    def resolve_expr(self, toks, fn):
        """Resolves a postfix expression's type; None when unknown."""
        toks = [t for t in toks if t not in ("const", "&", "*")]
        if not toks:
            return None
        i = 0
        # Primary: ident or qualified path or this
        if toks[0] == "this":
            cls = self._class_of_fn(fn)
            cur = cls.name if cls else None
            i = 1
        else:
            path = [toks[0]]
            i = 1
            while i + 1 < len(toks) and toks[i] == "::":
                path.append(toks[i + 1])
                i += 2
            name = path[-1]
            if i < len(toks) and toks[i] == "(":
                depth = 0
                while i < len(toks):
                    if toks[i] == "(":
                        depth += 1
                    elif toks[i] == ")":
                        depth -= 1
                        if depth == 0:
                            i += 1
                            break
                    i += 1
                cur = self._method_ret(
                    path[-2] if len(path) > 1 else
                    (fn.cls if fn else None), name, fn) or \
                    self._method_ret(None, name, fn)
            else:
                cur = self._find_decl_type(name, fn)
        # Postfix chain
        while i < len(toks) and cur is not None:
            t = toks[i]
            if t in (".", "->"):
                if i + 1 >= len(toks):
                    break
                member = toks[i + 1]
                is_call = i + 2 < len(toks) and toks[i + 2] == "("
                cur_exp = self.expand(cur, fn)
                if is_call:
                    if member == "find":
                        cur = f"__iter__<{cur_exp}>"
                    elif member in ("at",):
                        cur = _map_mapped_type(cur_exp) or \
                            _seq_value_type(cur_exp)
                    elif member in ("begin", "end", "cbegin", "cend"):
                        cur = f"__iter__<{cur_exp}>"
                    else:
                        cls_name = _type_class_name(cur_exp)
                        cur = self._method_ret(cls_name, member, fn)
                    i += 2
                    depth = 0
                    while i < len(toks):
                        if toks[i] == "(":
                            depth += 1
                        elif toks[i] == ")":
                            depth -= 1
                            if depth == 0:
                                i += 1
                                break
                        i += 1
                    continue
                if member == "second":
                    inner = _iter_inner(cur_exp) or cur_exp
                    cur = _map_mapped_type(self.expand(inner, fn))
                elif member == "first":
                    inner = _iter_inner(cur_exp) or cur_exp
                    cur = _map_key_type(self.expand(inner, fn))
                else:
                    inner = _iter_inner(cur_exp)
                    host = _type_class_name(inner or cur_exp)
                    cls = None
                    for cand in self.classes.get(host or "", []):
                        cls = cand
                        break
                    cur = cls.members.get(member) if cls else None
                i += 2
            elif t == "[":
                depth = 0
                while i < len(toks):
                    if toks[i] == "[":
                        depth += 1
                    elif toks[i] == "]":
                        depth -= 1
                        if depth == 0:
                            i += 1
                            break
                    i += 1
                cur_exp = self.expand(cur, fn)
                cur = _map_mapped_type(cur_exp) or _seq_value_type(cur_exp)
            else:
                break
        return cur

    def range_is_unordered(self, rng_toks, fn):
        text_toks = [t for t, _l in rng_toks]
        if text_toks and text_toks[0] == "<unordered>":
            return True  # pre-resolved by the libclang backend
        ty = self.resolve_expr(text_toks, fn)
        if ty is None:
            return False
        ty = self.expand(ty, fn)
        if ty is None:
            return False
        inner = _iter_inner(ty)
        if inner:
            ty = self.expand(inner, fn)
        return bool(ty and UNORDERED_TYPE_RE.search(ty))


def _decl_type_in_text(text, name):
    """Finds `Type name` declarations in flattened statement text."""
    if not text:
        return None
    for m in re.finditer(r"\b" + re.escape(name) + r"\b", text):
        after = text[m.end():].lstrip()
        if not after or after[0] not in "=;,)([{:":
            continue
        before = text[:m.start()]
        seg = before[_stmt_start(before):].strip()
        ty = _trailing_type(seg)
        if ty:
            return ty
    return None


def _stmt_start(before):
    """Index where the current declaration starts: the last ; { } ( or
    comma, skipping separators nested inside template angle brackets or
    call parentheses (scanning backward)."""
    angle = 0
    paren = 0
    for i in range(len(before) - 1, -1, -1):
        c = before[i]
        if c == ">":
            angle += 1
        elif c == "<":
            angle = max(0, angle - 1)
        elif c == ")":
            paren += 1
        elif c == "(":
            if paren == 0:
                return i + 1
            paren -= 1
        elif angle == 0 and paren == 0 and c in ";{},":
            return i + 1
    return 0


def _auto_rhs(body_text, name):
    m = re.search(r"\bauto\s*[&*]*\s*" + re.escape(name) +
                  r"\s*=\s*([^;]+);", body_text)
    return m.group(1).strip() if m else None


def _trailing_type(seg):
    """Extracts the trailing type from 'const std::map<K,V>&' etc."""
    seg = seg.strip()
    while seg and seg[-1] in "&*":
        seg = seg[:-1].strip()
    if not seg:
        return None
    if seg.endswith(">"):
        depth = 0
        for i in range(len(seg) - 1, -1, -1):
            if seg[i] == ">":
                depth += 1
            elif seg[i] == "<":
                depth -= 1
                if depth == 0:
                    head = seg[:i].strip()
                    m = re.search(r"([A-Za-z_][\w:]*)$", head)
                    if m:
                        ty = m.group(1) + seg[i:]
                        if m.group(1).split("::")[-1] == "auto":
                            return "auto"
                        return ty
                    return None
        return None
    m = re.search(r"([A-Za-z_][\w:]*)$", seg)
    if not m:
        return None
    ty = m.group(1)
    last = ty.split("::")[-1]
    if last in KEYWORDS and last != "auto":
        if last in ("bool", "char", "short", "int", "long", "float",
                    "double", "unsigned", "signed", "void"):
            return last
        return None
    return ty


def _split_template_args(ty):
    lt = ty.find("<")
    if lt == -1 or not ty.rstrip().endswith(">"):
        return None
    inner = ty[lt + 1:ty.rstrip().rfind(">")]
    args, depth, cur = [], 0, []
    for ch in inner:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        args.append("".join(cur).strip())
    return args


def _type_class_name(ty):
    if not ty:
        return None
    return ty.split("<")[0].strip().split("::")[-1].strip("&* ")


def _map_mapped_type(ty):
    if ty and re.search(r"\b(map|unordered_map|multimap)\s*<", ty or ""):
        args = _split_template_args(ty)
        if args and len(args) >= 2:
            return args[1]
    return None


def _map_key_type(ty):
    if ty and re.search(r"\b(map|unordered_map|multimap|set|unordered_set)"
                        r"\s*<", ty or ""):
        args = _split_template_args(ty)
        if args:
            return args[0]
    return None


def _seq_value_type(ty):
    if ty and re.search(r"\b(vector|array|span|deque)\s*<", ty or ""):
        args = _split_template_args(ty)
        if args:
            return args[0]
    return None


def _iter_inner(ty):
    if ty and ty.startswith("__iter__<") and ty.endswith(">"):
        return ty[len("__iter__<"):-1]
    return None


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------

def check_layering(files, sup, raw_lines, out):
    for f in files:
        if f.module is None or f.module not in MODULES:
            continue
        allowed = set(ALLOWED_DEPS[f.module]) | {f.module}
        seen_decl = set()
        for line, target, header in f.includes:
            if target not in allowed:
                if sup.allows(f.path, line, "layering",
                              raw_lines.get(f.path)):
                    continue
                out.append(
                    f"{f.path}:{line}: [layering] {f.module} must not "
                    f"include \"{header}\" ({f.module} → {target} is not "
                    f"an edge of the DAG; allowed: "
                    f"{', '.join(sorted(allowed - {f.module})) or 'none'})")
        for line, target in f.decl_uses:
            if target not in allowed and (target, line) not in seen_decl:
                seen_decl.add((target, line))
                if sup.allows(f.path, line, "layering",
                              raw_lines.get(f.path)):
                    continue
                out.append(
                    f"{f.path}:{line}: [layering] {f.module} must not "
                    f"name {target}:: ({f.module} → {target} is not an "
                    f"edge of the DAG)")


def check_unordered(files, resolver, sup, raw_lines, out):
    for f in files:
        for fn in f.functions:
            for rng, line in fn.ranges:
                if resolver.range_is_unordered(rng, fn):
                    if sup.allows(f.path, line, "unordered-iteration",
                                  raw_lines.get(f.path)):
                        continue
                    expr = " ".join(t for t, _l in rng)
                    out.append(
                        f"{f.path}:{line}: [unordered-iteration] range-for "
                        f"over an unordered container ('{expr}'): hash "
                        f"order must not feed the deterministic event "
                        f"stream — copy + sort, or iterate an ordered "
                        f"mirror")
            # The libclang backend records pre-resolved events too.
            for rule, line, detail in fn.events:
                if rule != "unordered-iteration":
                    continue
                if sup.allows(f.path, line, "unordered-iteration",
                              raw_lines.get(f.path)):
                    continue
                out.append(
                    f"{f.path}:{line}: [unordered-iteration] range-for "
                    f"over {detail}")


# Functions whose calls terminate the walk: the contract-failure path is
# [[noreturn]] and may allocate while formatting its one last message.
PURITY_EXEMPT = {"fail", "fail_op", "PW_CHECK", "PW_DCHECK",
                 "PW_UNREACHABLE"}


def check_hot_purity(files, resolver, sup, raw_lines, out):
    roots = [fn for f in files for fn in f.functions if fn.is_hot]
    reported = set()
    for root in roots:
        visited = set()
        stack = [(root, [root.qual])]
        while stack:
            fn, chain = stack.pop()
            key = (fn.path, fn.qual, fn.line)
            if key in visited:
                continue
            visited.add(key)
            for rule, line, detail in fn.events:
                if rule == "unordered-iteration":
                    continue
                if (fn.path, line, rule) in reported:
                    continue
                if sup.allows(fn.path, line, rule,
                              raw_lines.get(fn.path)):
                    continue
                reported.add((fn.path, line, rule))
                via = " → ".join(chain)
                out.append(
                    f"{fn.path}:{line}: [{rule}] {detail} reachable from "
                    f"PW_HOT root {root.qual} (via {via})")
            for recv, qual, name, _line in fn.calls:
                if name in PURITY_EXEMPT or name.startswith("PW_"):
                    continue
                cands = resolver.funcs_by_name.get(name, [])
                if not cands:
                    continue
                picked = _pick_callees(fn, recv, qual, name, cands,
                                       resolver)
                for callee in picked:
                    stack.append((callee, chain + [callee.qual]))


def _pick_callees(fn, recv, qual, name, cands, resolver):
    """Narrows name-matched candidates using receiver/qualifier type
    info; falls back to every candidate when ambiguous (conservative),
    unless the name is so generic that following it would be noise."""
    if qual is not None:
        scoped = [c for c in cands if c.cls == qual]
        if scoped:
            return scoped
        modscoped = [c for c in cands if c.module == qual]
        if modscoped:
            return modscoped
    if recv is not None:
        ty = resolver._find_decl_type(recv, fn)
        if ty:
            cls_name = _type_class_name(resolver.expand(ty, fn))
            scoped = [c for c in cands if c.cls == cls_name]
            if scoped:
                return scoped
            return []  # typed receiver, no project method: std type
    same_cls = [c for c in cands if fn.cls and c.cls == fn.cls]
    if same_cls:
        return same_cls
    free = [c for c in cands if c.cls is None and c.module == fn.module]
    if free:
        return free
    if len(cands) > 4:
        return []
    return cands


def check_guarded_by(files, resolver, sup, raw_lines, out):
    guarded = {}  # class name -> {field: cap}
    for f in files:
        for c in f.classes:
            if c.guards:
                guarded.setdefault(c.name, {}).update(c.guards)
    if not guarded:
        return
    for f in files:
        for fn in f.functions:
            if fn.cls not in guarded:
                continue
            fields = guarded[fn.cls]
            body = fn.body_text
            for field, cap in fields.items():
                if not re.search(r"\b" + re.escape(field) + r"\b", body):
                    continue
                if cap in fn.requires:
                    continue
                if _body_locks(body, cap):
                    continue
                line = fn.body_line
                if sup.allows(f.path, line, "guarded-by",
                              raw_lines.get(f.path)):
                    continue
                out.append(
                    f"{f.path}:{line}: [guarded-by] {fn.qual} touches "
                    f"'{field}' (PW_GUARDED_BY({cap})) without holding "
                    f"{cap}: take a lock on {cap} or annotate the "
                    f"function PW_REQUIRES({cap})")


def _body_locks(body, cap):
    lock_ctor = r"(?:MutexLock|lock_guard|unique_lock|scoped_lock|" \
                r"shared_lock)\s*(?:<[^>]*>)?\s+\w+\s*[({]\s*" + \
                re.escape(cap) + r"\b"
    if re.search(lock_ctor, body):
        return True
    if re.search(re.escape(cap) + r"\s*\.\s*lock\s*\(", body):
        return True
    return False


def check_design_sync(root, out):
    design = os.path.join(root, "DESIGN.md")
    if not os.path.exists(design):
        return
    text = open(design, encoding="utf-8").read()
    blocks = re.findall(r"```mermaid\n(.*?)```", text, re.DOTALL)
    edges = set()
    found_block = False
    for b in blocks:
        if "-->" not in b:
            continue
        found_block = True
        for m in re.finditer(r"^\s*(\w+)\s*-->\s*(\w+)\s*$", b,
                             re.MULTILINE):
            edges.add((m.group(1), m.group(2)))
    if not found_block:
        out.append(
            "DESIGN.md:1: [design-sync] no mermaid layering diagram "
            "found (a ```mermaid block with module --> dep edges must "
            "mirror pw_analyze's ALLOWED_DEPS)")
        return
    expected = {(mod, dep) for mod, deps in ALLOWED_DEPS.items()
                for dep in deps}
    for mod, dep in sorted(expected - edges):
        out.append(
            f"DESIGN.md:1: [design-sync] diagram is missing the edge "
            f"{mod} --> {dep} (present in ALLOWED_DEPS)")
    for mod, dep in sorted(edges - expected):
        out.append(
            f"DESIGN.md:1: [design-sync] diagram has extra edge "
            f"{mod} --> {dep} (not in ALLOWED_DEPS — the diagram must "
            f"match the enforced DAG edge-for-edge)")


def _check_dag_acyclic():
    state = {}

    def visit(m, path):
        if state.get(m) == "done":
            return
        if state.get(m) == "open":
            sys.exit(f"pw_analyze: ALLOWED_DEPS has a cycle: "
                     f"{' → '.join(path + [m])}")
        state[m] = "open"
        for d in ALLOWED_DEPS[m]:
            visit(d, path + [m])
        state[m] = "done"

    for m in ALLOWED_DEPS:
        visit(m, [])


# ----------------------------------------------------------------------

def discover_files(root):
    files = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".h", ".cpp")):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="restrict to these files (default: root/src/**)")
    ap.add_argument("--root", default=REPO_ROOT,
                    help="analysis root (default: the repository)")
    ap.add_argument("-p", "--build-dir", default=None,
                    help="build dir with compile_commands.json "
                         "(required for --backend=libclang)")
    ap.add_argument("--backend", choices=["auto", "builtin", "libclang"],
                    default="auto")
    ap.add_argument("--checks", default="all",
                    help="comma list: layering,unordered-iteration,"
                         "hot-purity,guarded-by,design-sync (default all)")
    ap.add_argument("--allowlist", default=None,
                    help="override the allowlist path (tests)")
    args = ap.parse_args(argv)

    _check_dag_acyclic()

    root = os.path.abspath(args.root)
    files = [os.path.abspath(f) for f in args.files] or discover_files(root)
    if not files:
        sys.exit(f"pw_analyze: no sources under {root}/src")

    backend = args.backend
    if backend == "auto":
        try:
            import clang.cindex  # noqa: F401
            backend = "libclang" if args.build_dir else "builtin"
        except ImportError:
            backend = "builtin"
    if backend == "libclang" and not args.build_dir:
        sys.exit("pw_analyze: --backend=libclang needs -p BUILD_DIR")

    allowlist = args.allowlist
    if allowlist is None:
        default_allow = os.path.join(REPO_ROOT, "tools",
                                     "pw_analyze_allowlist.txt")
        allowlist = default_allow if root == REPO_ROOT else None
    sup = Suppressions(root, allowlist)

    raw_lines = {}
    facts = []
    if backend == "libclang":
        facts = extract_tree_libclang(root, args.build_dir, files)
    else:
        for f in files:
            facts.append(extract_file_builtin(f, root))
    for f in files:
        rel = os.path.relpath(f, root).replace(os.sep, "/")
        sup.load_file(f, rel)
        raw_lines[rel] = open(f, encoding="utf-8",
                              errors="replace").read().splitlines()

    checks = set(c.strip() for c in args.checks.split(","))
    if "all" in checks:
        checks = {"layering", "unordered-iteration", "hot-purity",
                  "guarded-by", "design-sync"}

    resolver = Resolver(facts)
    out = []
    if "layering" in checks:
        check_layering(facts, sup, raw_lines, out)
    if "unordered-iteration" in checks:
        check_unordered(facts, resolver, sup, raw_lines, out)
    if "hot-purity" in checks:
        check_hot_purity(facts, resolver, sup, raw_lines, out)
    if "guarded-by" in checks:
        check_guarded_by(facts, resolver, sup, raw_lines, out)
    if "design-sync" in checks:
        check_design_sync(root, out)

    for path, rule, why in sup.unused_entries():
        out.append(
            f"{allowlist}: [unused-allowlist-entry] '{path}:{rule}' no "
            f"longer matches any violation — delete it (was: {why})")
    out.extend(sup.errors)

    out = sorted(set(out))
    for line in out:
        print(line)
    n_fns = sum(len(f.functions) for f in facts)
    n_hot = sum(1 for f in facts for fn in f.functions if fn.is_hot)
    print(f"pw_analyze[{backend}]: {len(files)} files, {n_fns} functions "
          f"({n_hot} PW_HOT roots), {len(out)} finding(s)", file=sys.stderr)
    return 1 if out else 0


if __name__ == "__main__":
    sys.exit(main())
