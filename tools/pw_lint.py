#!/usr/bin/env python3
"""pw_lint: repo-specific determinism and hygiene checks for src/ and
examples/.

The simulator's results are exact-equivalence claims (byte-identical
survey output, bit-reproducible sweeps), so the classic ways C++ code
goes quietly nondeterministic are outright banned here and enforced by
CI rather than by review vigilance:

  wall-clock            time()/clock()/gettimeofday()/system_clock reads
                        anywhere outside common/clock.h — simulated time
                        comes from the Scheduler, never the host.
  raw-random            rand()/srand()/random_device/drand48 and any
                        #include <random> outside common/rng — all
                        randomness flows from seeded politewifi::Rng.
  raw-new               new/delete in the sim hot paths (src/sim,
                        src/mac, src/phy): per-event allocations are the
                        engine's historical perf bugs; use pools,
                        SmallFn capture, or values.
  missing-override      a `virtual` re-declaration in a derived class
                        without `override`: silently forks the vtable
                        when a base signature changes.
  banned-include        <ctime> (wall clock), <iostream> (iostream's
                        static init order + interleaved buffering;
                        library code logs via common/logging.h).
  by-value-bytes        a by-value `Bytes` / `std::vector<std::uint8_t>`
                        parameter in src/sim or src/frames: the payload
                        pipeline is zero-copy (shared PpduRef buffers);
                        a by-value octet parameter reintroduces a hidden
                        copy per call. Pass std::span<const std::uint8_t>
                        to read, Bytes&& to adopt, or a PpduRef to share.
                        Intentional owning sinks (builder-style setters
                        that move) use the inline escape hatch.
  raw-sim-construction  naming sim::Simulation / SimulationConfig inside
                        src/runtime/experiments/: an experiment's only
                        sanctioned seed source is RunContext::make_sim
                        (seeded from the run seed), so hand-constructed
                        simulations — and with them wall-clock or ad-hoc
                        seeds — can't sneak back into the suite.
  direct-timing         std::chrono::steady_clock reads in the
                        instrumented layers (src/sim, src/mac, src/phy,
                        src/runtime): timing there routes through
                        PW_TIMEIT / obs::ScopedTimer so it lands in the
                        metrics registry and the timeline profiler, and
                        compiles out with -DPW_METRICS=OFF. src/obs is
                        the one place allowed to read the clock.
  scalar-fer-in-fanout  a scalar phy::frame_error_rate call in
                        src/sim/medium.cpp: the fan-out computes FER
                        through the SoA batch pass + memo
                        (batched_frame_error_rates); a stray per-receiver
                        scalar call there is exactly the 3k-tx/s wall the
                        batch pass removed. The memoized off-switch path
                        (cached_frame_error_rate) carries the one
                        sanctioned inline allow.

The unordered-iteration rule (range-for over an unordered container)
used to live here as a regex; it moved to tools/pw_analyze.py, whose
type resolution follows aliases, auto, find()-iterators and structured
bindings that a line regex cannot. pw_lint stays the cheap
token-pattern tier; pw_analyze is the AST-grade tier (see
CONTRIBUTING.md, "Static analysis & invariants").

Violations can be acknowledged in tools/pw_lint_allowlist.txt as
`path:rule  # justification` (the justification is mandatory), or
inline with `// pw-lint: allow(rule)` on the offending line. Unused
allowlist entries are themselves errors, so the file can only shrink.

Usage:
  python3 tools/pw_lint.py             # lint src/ + examples/ (the CI gate)
  python3 tools/pw_lint.py FILES...    # lint specific files (pre-push)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ALLOWLIST_PATH = REPO / "tools" / "pw_lint_allowlist.txt"

# Directories whose event-rate makes per-event heap traffic a perf bug.
HOT_PATH_DIRS = ("src/sim", "src/mac", "src/phy")

# Directories on the zero-copy payload pipeline, where a by-value octet
# parameter means a hidden per-call copy.
BY_VALUE_DIRS = ("src/sim", "src/frames")

# Experiment pipelines must obtain simulations (and therefore seeds) from
# RunContext::make_sim, never by naming the Simulation type themselves.
EXPERIMENT_DIRS = ("src/runtime/experiments",)

# Layers instrumented by obs/: ad-hoc steady_clock reads there bypass
# the metrics registry and the PW_METRICS=OFF compile gate.
INSTRUMENTED_DIRS = ("src/sim", "src/mac", "src/phy", "src/runtime")

# Files on the medium fan-out, where per-receiver scalar FER calls are
# the historical throughput wall (the SoA batch pass exists to kill them).
FANOUT_FILES = ("src/sim/medium.cpp",)

# Linted roots for a no-argument run.
LINT_ROOTS = ("src", "examples")

WALL_CLOCK_RE = re.compile(
    r"\b(?:time|clock|gettimeofday|clock_gettime|getrandom)\s*\("
    r"|std::chrono::(?:system_clock|high_resolution_clock)"
)
RAW_RANDOM_RE = re.compile(
    r"\b(?:rand|srand|rand_r|drand48|lrand48|random)\s*\("
    r"|std::random_device|\brandom_device\b"
)
RANDOM_INCLUDE_RE = re.compile(r'#\s*include\s*<random>')
BANNED_INCLUDE_RE = re.compile(r'#\s*include\s*<(ctime|iostream)>')
NEW_DELETE_RE = re.compile(r"(?<!::)\bnew\b(?!\s*\()|\bdelete\b")
VIRTUAL_RE = re.compile(r"^\s*virtual\b")
CLASS_WITH_BASE_RE = re.compile(
    r"\b(?:class|struct)\s+(\w+)[^;{]*:\s*(?:public|protected|private)\s"
)
INLINE_ALLOW_RE = re.compile(r"//\s*pw-lint:\s*allow\((\s*[\w-]+\s*)\)")
RAW_SIM_RE = re.compile(r"\bsim::Simulation\b|\bSimulationConfig\b")
# Clock *reads*, not duration math: duration_cast and chrono literals stay
# legal everywhere; naming steady_clock is what this rule fences off.
DIRECT_TIMING_RE = re.compile(r"\bsteady_clock\b")
# The scalar FER entry point exactly — `frame_error_rate_batch(` has a
# different next character and deliberately does not match.
SCALAR_FER_RE = re.compile(r"\bphy::frame_error_rate\s*\(")
# A by-value octet-buffer parameter: `Bytes name` (no &/&&) directly after
# an opening paren or comma, or starting a continuation line of a wrapped
# signature. Matches parameters, not declarations (`Bytes x;`) or
# rvalue-reference adopters (`Bytes&& x`).
BY_VALUE_BYTES_RE = re.compile(
    r"(?:[(,]|^)\s*(?:politewifi::)?(?:frames::)?(?:common::)?"
    r"(?:Bytes|std::vector<std::uint8_t>)\s+\w+\s*[,)]"
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, allowlist: dict[tuple[str, str], str]):
        self.allowlist = allowlist
        self.used_allows: set[tuple[str, str]] = set()
        self.violations: list[str] = []

    def report(self, path: Path, lineno: int, rule: str, message: str,
               raw_line: str) -> None:
        rel = path.relative_to(REPO).as_posix()
        inline = INLINE_ALLOW_RE.search(raw_line)
        if inline and inline.group(1).strip() == rule:
            return
        if (rel, rule) in self.allowlist:
            self.used_allows.add((rel, rule))
            return
        self.violations.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(REPO).as_posix()
        raw_text = path.read_text()
        raw_lines = raw_text.splitlines()
        code_lines = strip_comments_and_strings(raw_text).splitlines()
        in_rng = rel.startswith("src/common/rng")
        in_clock = rel == "src/common/clock.h"
        hot = rel.startswith(HOT_PATH_DIRS)
        zero_copy = rel.startswith(BY_VALUE_DIRS)
        experiment = rel.startswith(EXPERIMENT_DIRS)
        instrumented = rel.startswith(INSTRUMENTED_DIRS)
        fanout = rel in FANOUT_FILES

        # Track "inside a derived class" with a brace-depth heuristic good
        # enough for this codebase's one-class-per-header style.
        derived_depth: list[int] = []
        depth = 0

        for idx, line in enumerate(code_lines):
            raw = raw_lines[idx] if idx < len(raw_lines) else ""
            lineno = idx + 1

            if not in_clock and WALL_CLOCK_RE.search(line):
                self.report(path, lineno, "wall-clock",
                            "host wall-clock read; simulated time comes "
                            "from the Scheduler", raw)
            if not in_rng:
                if RAW_RANDOM_RE.search(line):
                    self.report(path, lineno, "raw-random",
                                "raw randomness source; draw from a seeded "
                                "politewifi::Rng instead", raw)
                if RANDOM_INCLUDE_RE.search(line):
                    self.report(path, lineno, "raw-random",
                                "<random> outside common/rng", raw)
            if (m := BANNED_INCLUDE_RE.search(line)):
                self.report(path, lineno, "banned-include",
                            f"<{m.group(1)}> is banned in src/", raw)
            if hot and NEW_DELETE_RE.search(line) \
                    and not re.search(r"=\s*delete", line):
                self.report(path, lineno, "raw-new",
                            "raw new/delete in a sim hot path; pool it or "
                            "hold it by value", raw)
            if instrumented and DIRECT_TIMING_RE.search(line):
                self.report(path, lineno, "direct-timing",
                            "direct steady_clock read in an instrumented "
                            "layer; route timing through PW_TIMEIT "
                            "(obs/metrics.h) so it reaches the registry "
                            "and compiles out with PW_METRICS=OFF", raw)
            if fanout and SCALAR_FER_RE.search(line):
                self.report(path, lineno, "scalar-fer-in-fanout",
                            "scalar phy::frame_error_rate on the medium "
                            "fan-out; route through "
                            "batched_frame_error_rates (the SoA pass + "
                            "memo) instead", raw)
            if experiment and RAW_SIM_RE.search(line):
                self.report(path, lineno, "raw-sim-construction",
                            "experiments build simulations through "
                            "RunContext::make_sim (run-seed derived), never "
                            "by hand", raw)
            if zero_copy and BY_VALUE_BYTES_RE.search(line):
                self.report(path, lineno, "by-value-bytes",
                            "by-value octet buffer on the payload pipeline; "
                            "pass std::span<const std::uint8_t>, Bytes&&, "
                            "or a PpduRef", raw)
            if CLASS_WITH_BASE_RE.search(line):
                derived_depth.append(depth)
            if derived_depth and VIRTUAL_RE.search(line) \
                    and "override" not in line and "final" not in line \
                    and "= 0" not in line and "~" not in line:
                self.report(path, lineno, "missing-override",
                            "virtual re-declaration in a derived class "
                            "without override", raw)
            depth += line.count("{") - line.count("}")
            while derived_depth and depth <= derived_depth[-1] \
                    and ("}" in line):
                derived_depth.pop()

    def check_unused_allows(self) -> None:
        for key, justification in sorted(self.allowlist.items()):
            if key not in self.used_allows:
                self.violations.append(
                    f"{ALLOWLIST_PATH.relative_to(REPO)}: unused allowlist "
                    f"entry {key[0]}:{key[1]} ({justification}) — delete it")


def load_allowlist() -> dict[tuple[str, str], str]:
    allows: dict[tuple[str, str], str] = {}
    if not ALLOWLIST_PATH.exists():
        return allows
    for lineno, line in enumerate(ALLOWLIST_PATH.read_text().splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "#" not in stripped:
            sys.exit(f"{ALLOWLIST_PATH}:{lineno}: entry without a "
                     "justification comment")
        entry, justification = stripped.split("#", 1)
        try:
            path, rule = entry.strip().rsplit(":", 1)
        except ValueError:
            sys.exit(f"{ALLOWLIST_PATH}:{lineno}: malformed entry "
                     f"'{entry.strip()}' (want path:rule  # why)")
        allows[(path, rule)] = justification.strip()
    return allows


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = []
        for root in LINT_ROOTS:
            files += sorted((REPO / root).rglob("*.h")) + \
                sorted((REPO / root).rglob("*.cpp"))
    files = [f for f in files if f.suffix in (".h", ".cpp")
             and any((REPO / root) in f.parents for root in LINT_ROOTS)]
    linter = Linter(load_allowlist())
    for f in files:
        linter.lint_file(f)
    if not argv:  # full runs keep the allowlist honest
        linter.check_unused_allows()
    for v in linter.violations:
        print(v)
    if linter.violations:
        print(f"pw_lint: {len(linter.violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"pw_lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
