#!/usr/bin/env python3
"""bench_compare: diff fresh BENCH_*.json runs against committed baselines.

Each bench binary writes a machine-readable BENCH_<name>.json (see
bench/bench_util.h); the copies at the repo root are the committed
baselines. CI reruns the benches into a scratch directory (PW_BENCH_DIR)
and this script compares the two sets, failing when a throughput metric
regressed by more than the threshold (default 15%).

Rules:
  - Higher-is-better metrics (events_per_sec, sim_wall_ratio, *_per_sec):
    fail when fresh < baseline * (1 - threshold).
  - Counter metrics ending in _allocations: fail when the fresh count
    exceeds the baseline by more than the threshold (allocation creep is
    a regression even though it is not a rate).
  - Other metrics (wall_time_s, events_executed, scale notes...) are
    informational: they vary with PW_SCALE and machine speed, so they are
    printed but never gate.
  - A bench present in the baseline but missing from the fresh run fails
    (a silently-skipped bench is how regressions hide); a new bench with
    no baseline is reported and passes.
  - With --metrics, the "metrics" block a bench may embed (the obs/
    registry harvested over a fixed-size pass, see OBSERVABILITY.md) is
    also gated: efficiency rates derived from counter pairs (cache
    hits/misses, pool reuses/allocations) must not drop more than
    --metrics-threshold percentage points below the baseline, and
    drift-gated counters (e.g. ppdu_bytes_copied, which the harvest pass
    pins to a deterministic value) must not creep upward past the
    threshold — or past zero when the baseline is zero. Pairs whose
    baseline denominator is zero — a PW_METRICS=OFF build writes
    all-zero blocks — are skipped as "no data", never failed.

  - --floor KEY=VALUE (repeatable) pins an absolute minimum on a fresh
    value, independent of the committed baseline: the relative gate only
    catches a drop against the last committed number, so a sequence of
    small regressions (or a quietly re-baselined json) can walk a
    headline throughput down unnoticed. CI floors the fan-out benches
    this way.

Usage:
  python3 tools/bench_compare.py BASELINE_DIR FRESH_DIR [--threshold 0.15]
                                 [--metrics] [--metrics-threshold 0.10]
                                 [--floor KEY=VALUE ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GATED_SUFFIXES = ("_per_sec",)
GATED_EXACT = {"events_per_sec", "sim_wall_ratio", "frames_per_sec"}
COUNTER_SUFFIXES = ("_allocations",)

# --metrics mode: efficiency rates derived from obs/ counter pairs.
# rate = good / (good + bad); a pair with good + bad == 0 in the baseline
# carries no data (metrics compiled out) and is skipped.
METRIC_RATE_PAIRS = (
    ("fer_cache_hit_rate",
     "sim.medium.fer_cache_hits", "sim.medium.fer_cache_misses"),
    ("link_cache_hit_rate",
     "sim.medium.link_cache_hits", "sim.medium.link_cache_misses"),
    ("ppdu_pool_reuse_rate",
     "sim.ppdu_pool.reuses", "sim.ppdu_pool.allocations"),
    # Fraction of fading evaluations served at a link's cached AR(1)
    # chain position (the "bad" side counts chain samples drawn). Zero
    # totals — fading off in the harvest pass, or metrics compiled
    # out — skip as no-data like every other pair.
    ("fading_cache_hit_rate",
     "sim.medium.fading_cache_hits", "sim.medium.fading_advances"),
)

# --metrics mode: counters gated against upward drift. The harvest pass
# is deterministic (fixed sizes, fixed seeds), so on unchanged code the
# fresh value equals the baseline exactly; growth past the threshold —
# or past zero when the baseline is zero — is a copy/leak regression.
METRIC_DRIFT_COUNTERS = ("sim.medium.ppdu_bytes_copied",)


def load_dir(path: Path) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for f in sorted(path.glob("BENCH_*.json")):
        try:
            data = json.loads(f.read_text())
        except json.JSONDecodeError as e:
            sys.exit(f"{f}: unparseable bench json: {e}")
        name = data.get("bench", f.stem.removeprefix("BENCH_"))
        out[name] = data
    return out


def is_gated(key: str) -> bool:
    return key in GATED_EXACT or key.endswith(GATED_SUFFIXES)


def is_counter(key: str) -> bool:
    return key.endswith(COUNTER_SUFFIXES)


def compare_metrics(name: str, base: dict, cur: dict, threshold_pp: float,
                    failures: list[str]) -> None:
    """Gates one bench's embedded obs/ metrics block against the baseline."""
    base_counters = base.get("counters", {})
    cur_counters = cur.get("counters", {})
    for label, good, bad in METRIC_RATE_PAIRS:
        base_total = base_counters.get(good, 0) + base_counters.get(bad, 0)
        cur_total = cur_counters.get(good, 0) + cur_counters.get(bad, 0)
        if base_total == 0 or cur_total == 0:
            print(f"  skip {name}.metrics.{label}: no data "
                  f"(metrics compiled out?)")
            continue
        base_rate = base_counters.get(good, 0) / base_total
        cur_rate = cur_counters.get(good, 0) / cur_total
        drop = base_rate - cur_rate
        status = "OK"
        if drop > threshold_pp:
            status = "FAIL"
            failures.append(
                f"{name}.metrics.{label}: {base_rate:.1%} -> {cur_rate:.1%} "
                f"(dropped {drop:.1%}, limit {threshold_pp:.0%} points)")
        print(f"  {status:4s} {name}.metrics.{label}: "
              f"{base_rate:.1%} -> {cur_rate:.1%}")
    for key in METRIC_DRIFT_COUNTERS:
        base_v = base_counters.get(key)
        cur_v = cur_counters.get(key)
        if base_v is None or cur_v is None:
            continue
        drifted = (cur_v > 0) if base_v == 0 \
            else (cur_v > base_v * (1 + threshold_pp))
        status = "OK"
        if drifted:
            status = "FAIL"
            failures.append(
                f"{name}.metrics.{key}: {base_v} -> {cur_v} "
                f"(counter drifted upward)")
        print(f"  {status:4s} {name}.metrics.{key}: {base_v} -> {cur_v}")


def report_scaling(name: str, cur: dict) -> None:
    """Derived scale-out rows: for every `<prefix>_procs` note that has
    matching `<prefix>_seq_tx_per_sec` / `<prefix>_par_tx_per_sec` notes
    (bench_table2_wardrive's district phase emits one such set), prints
    the parallel speedup and the per-process scaling efficiency. Purely
    informational — both are core-count-bound, so a 1-core dev box
    legitimately prints ~1x where the multi-core CI runner prints ~3x;
    the underlying *_per_sec notes are still gated relatively, and CI
    can pin an absolute --floor on the parallel rate.
    """
    for key, procs in sorted(cur.items()):
        if not key.endswith("_procs") or not isinstance(procs, (int, float)) \
                or procs <= 0:
            continue
        prefix = key.removesuffix("_procs")
        seq = cur.get(f"{prefix}_seq_tx_per_sec")
        par = cur.get(f"{prefix}_par_tx_per_sec")
        if not isinstance(seq, (int, float)) or seq <= 0 \
                or not isinstance(par, (int, float)):
            continue
        speedup = par / seq
        print(f"  info {name}.{prefix}: {par:.0f} tx/s across {procs:.0f} "
              f"procs = {par / procs:.0f} tx/s per proc "
              f"({speedup:.2f}x over sequential, "
              f"{speedup / procs:.0%} scaling efficiency)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline_dir", type=Path)
    ap.add_argument("fresh_dir", type=Path)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument("--metrics", action="store_true",
                    help="also gate embedded obs/ metrics blocks")
    ap.add_argument("--metrics-threshold", type=float, default=0.10,
                    help="allowed hit/reuse-rate drop in percentage "
                         "points (default 0.10)")
    ap.add_argument("--floor", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="absolute throughput floor on a fresh value "
                         "(repeatable), e.g. "
                         "--floor fanout_5000_indexed_tx_per_sec=5000. "
                         "Unlike the relative gate, a floor holds even "
                         "if the committed baseline drifts downward; it "
                         "fails too when no fresh bench reports KEY.")
    args = ap.parse_args()

    floors: dict[str, float] = {}
    for spec in args.floor:
        key, sep, value = spec.partition("=")
        if not sep or not key:
            sys.exit(f"--floor {spec!r}: want KEY=VALUE")
        try:
            floors[key] = float(value)
        except ValueError:
            sys.exit(f"--floor {spec!r}: {value!r} is not a number")

    baseline = load_dir(args.baseline_dir)
    fresh = load_dir(args.fresh_dir)
    if not baseline:
        sys.exit(f"no BENCH_*.json baselines under {args.baseline_dir}")

    failures: list[str] = []
    for name, base in sorted(baseline.items()):
        cur = fresh.get(name)
        if cur is None:
            failures.append(f"{name}: no fresh run (bench skipped or broken)")
            continue
        for key, base_v in base.items():
            if not isinstance(base_v, (int, float)):
                continue
            cur_v = cur.get(key)
            if not isinstance(cur_v, (int, float)):
                continue
            if is_gated(key) and base_v > 0:
                change = (cur_v - base_v) / base_v
                status = "OK"
                if change < -args.threshold:
                    status = "FAIL"
                    failures.append(
                        f"{name}.{key}: {base_v:.1f} -> {cur_v:.1f} "
                        f"({change:+.1%}, limit -{args.threshold:.0%})")
                print(f"  {status:4s} {name}.{key}: {base_v:.1f} -> "
                      f"{cur_v:.1f} ({change:+.1%})")
            elif is_counter(key):
                limit = base_v * (1 + args.threshold)
                status = "OK"
                if cur_v > limit and cur_v - base_v > 1:
                    status = "FAIL"
                    failures.append(
                        f"{name}.{key}: {base_v:.0f} -> {cur_v:.0f} "
                        f"(> {limit:.0f})")
                print(f"  {status:4s} {name}.{key}: {base_v:.0f} -> "
                      f"{cur_v:.0f}")
            else:
                print(f"  info {name}.{key}: {base_v:g} -> {cur_v:g}")
        if args.metrics and isinstance(base.get("metrics"), dict) \
                and isinstance(cur.get("metrics"), dict):
            compare_metrics(name, base["metrics"], cur["metrics"],
                            args.metrics_threshold, failures)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  new  {name}: no baseline yet (commit its BENCH json)")

    for name, cur in sorted(fresh.items()):
        report_scaling(name, cur)

    unseen = dict(floors)
    for name, cur in sorted(fresh.items()):
        for key, floor in sorted(floors.items()):
            cur_v = cur.get(key)
            if not isinstance(cur_v, (int, float)):
                continue
            unseen.pop(key, None)
            status = "OK"
            if cur_v < floor:
                status = "FAIL"
                failures.append(
                    f"{name}.{key}: {cur_v:.1f} below absolute floor "
                    f"{floor:.1f}")
            print(f"  {status:4s} {name}.{key}: {cur_v:.1f} "
                  f"(floor {floor:.1f})")
    for key, floor in sorted(unseen.items()):
        failures.append(
            f"--floor {key}={floor:g}: no fresh bench reports this key")

    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: {len(baseline)} bench(es) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
