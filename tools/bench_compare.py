#!/usr/bin/env python3
"""bench_compare: diff fresh BENCH_*.json runs against committed baselines.

Each bench binary writes a machine-readable BENCH_<name>.json (see
bench/bench_util.h); the copies at the repo root are the committed
baselines. CI reruns the benches into a scratch directory (PW_BENCH_DIR)
and this script compares the two sets, failing when a throughput metric
regressed by more than the threshold (default 15%).

Rules:
  - Higher-is-better metrics (events_per_sec, sim_wall_ratio, *_per_sec):
    fail when fresh < baseline * (1 - threshold).
  - Counter metrics ending in _allocations: fail when the fresh count
    exceeds the baseline by more than the threshold (allocation creep is
    a regression even though it is not a rate).
  - Other metrics (wall_time_s, events_executed, scale notes...) are
    informational: they vary with PW_SCALE and machine speed, so they are
    printed but never gate.
  - A bench present in the baseline but missing from the fresh run fails
    (a silently-skipped bench is how regressions hide); a new bench with
    no baseline is reported and passes.

Usage:
  python3 tools/bench_compare.py BASELINE_DIR FRESH_DIR [--threshold 0.15]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GATED_SUFFIXES = ("_per_sec",)
GATED_EXACT = {"events_per_sec", "sim_wall_ratio", "frames_per_sec"}
COUNTER_SUFFIXES = ("_allocations",)


def load_dir(path: Path) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for f in sorted(path.glob("BENCH_*.json")):
        try:
            data = json.loads(f.read_text())
        except json.JSONDecodeError as e:
            sys.exit(f"{f}: unparseable bench json: {e}")
        name = data.get("bench", f.stem.removeprefix("BENCH_"))
        out[name] = data
    return out


def is_gated(key: str) -> bool:
    return key in GATED_EXACT or key.endswith(GATED_SUFFIXES)


def is_counter(key: str) -> bool:
    return key.endswith(COUNTER_SUFFIXES)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline_dir", type=Path)
    ap.add_argument("fresh_dir", type=Path)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    args = ap.parse_args()

    baseline = load_dir(args.baseline_dir)
    fresh = load_dir(args.fresh_dir)
    if not baseline:
        sys.exit(f"no BENCH_*.json baselines under {args.baseline_dir}")

    failures: list[str] = []
    for name, base in sorted(baseline.items()):
        cur = fresh.get(name)
        if cur is None:
            failures.append(f"{name}: no fresh run (bench skipped or broken)")
            continue
        for key, base_v in base.items():
            if not isinstance(base_v, (int, float)):
                continue
            cur_v = cur.get(key)
            if not isinstance(cur_v, (int, float)):
                continue
            if is_gated(key) and base_v > 0:
                change = (cur_v - base_v) / base_v
                status = "OK"
                if change < -args.threshold:
                    status = "FAIL"
                    failures.append(
                        f"{name}.{key}: {base_v:.1f} -> {cur_v:.1f} "
                        f"({change:+.1%}, limit -{args.threshold:.0%})")
                print(f"  {status:4s} {name}.{key}: {base_v:.1f} -> "
                      f"{cur_v:.1f} ({change:+.1%})")
            elif is_counter(key):
                limit = base_v * (1 + args.threshold)
                status = "OK"
                if cur_v > limit and cur_v - base_v > 1:
                    status = "FAIL"
                    failures.append(
                        f"{name}.{key}: {base_v:.0f} -> {cur_v:.0f} "
                        f"(> {limit:.0f})")
                print(f"  {status:4s} {name}.{key}: {base_v:.0f} -> "
                      f"{cur_v:.0f}")
            else:
                print(f"  info {name}.{key}: {base_v:g} -> {cur_v:g}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  new  {name}: no baseline yet (commit its BENCH json)")

    if failures:
        print(f"\nbench_compare: {len(failures)} regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: {len(baseline)} bench(es) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
