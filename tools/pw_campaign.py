#!/usr/bin/env python3
"""Campaign inspector/author (the Python face of `pw_run --campaign`).

Subcommands:

    init     author a canonical manifest from experiment specs
    status   summarize a campaign directory's journal
    resume   re-invoke `pw_run --campaign` over an existing directory
    repair   truncate a torn results.jsonl tail after a writer crash

`init` takes positional job specs `experiment[:key=value...]` and emits
the byte-exact canonical manifest the C++ side would re-serialize:
json.dumps(indent=2, sort_keys=True) matches the common::Json writer
for the manifest's value types (ints, strings, bools), and the derived
per-job sub-seeds use the same splitmix64(base_seed ^ fnv1a64(id))
arithmetic as runtime/campaign/manifest.cpp (campaign_test pins a
Python-authored golden against the C++ round-trip).

    tools/pw_campaign.py init --campaign=nightly --suite-version=pr10 \
        --seed=4242 --smoke quickstart wardriving:scale=0.01 > m.json
    pw_run --campaign=m.json --procs=4 --json=nightly.json
    tools/pw_campaign.py status m.campaign

CAMPAIGNS.md documents the manifest schema and journal semantics.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PW_RUN = REPO / "build" / "src" / "runtime" / "pw_run"

MASK64 = (1 << 64) - 1


def fnv1a64(text):
    h = 1469598103934665603
    for byte in text.encode():
        h = ((h ^ byte) * 1099511628211) & MASK64
    return h


def splitmix64(z):
    z = (z + 0x9E3779B97F4A7C15) & MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return z ^ (z >> 31)


def derive_job_seed(base_seed, job_id):
    """Mirrors campaign::derive_job_seed: masked into --seed's range."""
    return splitmix64(base_seed ^ fnv1a64(job_id)) & 0x7FFFFFFFFFFFFFFF


def cmd_init(args):
    jobs = []
    for index, spec in enumerate(args.jobs, start=1):
        parts = spec.split(":")
        experiment, params = parts[0], {}
        for part in parts[1:]:
            if "=" not in part:
                sys.exit(f"pw_campaign: bad job spec {spec!r}: "
                         f"expected experiment[:key=value...]")
            key, value = part.split("=", 1)
            params[key] = value
        job_id = f"{index:03d}-{experiment}"
        jobs.append({
            "experiment": experiment,
            "id": job_id,
            "params": params,
            "seed": derive_job_seed(args.seed, job_id),
            "smoke": args.smoke,
        })
    manifest = {
        "base_seed": args.seed,
        "campaign": args.campaign,
        "jobs": jobs,
        "policy": {
            "backoff_ms": args.backoff_ms,
            "max_attempts": args.max_attempts,
            "timeout_ms": args.timeout_ms,
        },
        "suite_version": args.suite_version,
    }
    text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"manifest: {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def load_journal(campaign_dir):
    """Returns (records, progress, torn_offset_or_None)."""
    results = campaign_dir / "results.jsonl"
    records, torn = [], None
    if results.exists():
        data = results.read_bytes()
        offset = 0
        for line in data.split(b"\n"):
            end = offset + len(line)
            if line:
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    if end >= len(data):  # no trailing newline: torn tail
                        torn = offset
                    else:
                        sys.exit(f"pw_campaign: {results}: corrupt interior "
                                 f"record at byte {offset}")
            offset = end + 1
    state = campaign_dir / "state.json"
    progress = {}
    if state.exists():
        progress = json.loads(state.read_text()).get("jobs", {})
    return records, progress, torn


def cmd_status(args):
    campaign_dir = pathlib.Path(args.dir)
    manifest_path = campaign_dir / "manifest.json"
    if not manifest_path.exists():
        sys.exit(f"pw_campaign: {campaign_dir} is not a campaign directory "
                 f"(no manifest.json)")
    manifest = json.loads(manifest_path.read_text())
    records, progress, torn = load_journal(campaign_dir)
    completed = {record["id"] for record in records}
    quarantined = sorted(job_id for job_id, entry in progress.items()
                         if entry.get("status") == "quarantined")
    total = len(manifest["jobs"])
    retries = sum(max(0, entry.get("attempts", 0) - 1)
                  for entry in progress.values())
    print(f"campaign:    {manifest['campaign']} "
          f"(suite {manifest['suite_version']})")
    print(f"jobs:        {len(completed)}/{total} completed, "
          f"{len(quarantined)} quarantined, {retries} retried attempts")
    for job in manifest["jobs"]:
        job_id = job["id"]
        entry = progress.get(job_id, {})
        if job_id in completed:
            status = f"completed  {entry.get('digest', '?')}"
        elif job_id in quarantined:
            status = f"QUARANTINED (see {entry.get('log', 'logs/')})"
        elif entry.get("attempts"):
            status = f"pending after {entry['attempts']} attempt(s)"
        else:
            status = "pending"
        print(f"  {job_id:24} {status}")
    if torn is not None:
        print(f"torn tail:   results.jsonl has a partial record at byte "
              f"{torn}; run `tools/pw_campaign.py repair {campaign_dir}`")
    return 1 if (quarantined or torn is not None) else 0


def cmd_resume(args):
    campaign_dir = pathlib.Path(args.dir)
    manifest_path = campaign_dir / "manifest.json"
    if not manifest_path.exists():
        sys.exit(f"pw_campaign: {campaign_dir} is not a campaign directory "
                 f"(no manifest.json)")
    if not args.pw_run.exists():
        sys.exit(f"pw_campaign: pw_run not found at {args.pw_run} "
                 f"(build it first)")
    cmd = [str(args.pw_run), f"--campaign={manifest_path}",
           f"--campaign-dir={campaign_dir}", f"--procs={args.processes}"]
    if args.json is not None:
        cmd.append(f"--json={args.json}")
    if args.metrics is not None:
        cmd.append(f"--metrics={args.metrics}")
    return subprocess.run(cmd).returncode


def cmd_repair(args):
    campaign_dir = pathlib.Path(args.dir)
    results = campaign_dir / "results.jsonl"
    if not results.exists():
        sys.exit(f"pw_campaign: {results} does not exist")
    _, _, torn = load_journal(campaign_dir)
    if torn is None:
        print("results.jsonl is clean; nothing to repair")
        return 0
    data = results.read_bytes()
    results.write_bytes(data[:torn])
    print(f"truncated torn tail: {len(data) - torn} bytes dropped at "
          f"byte {torn} (the record was never durable; the job will "
          f"re-run on resume)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="author a canonical manifest")
    init.add_argument("--campaign", required=True,
                      help="campaign name ([a-z0-9_.-]+)")
    init.add_argument("--suite-version", required=True,
                      help="version tag stamped into every artifact")
    init.add_argument("--seed", type=int, default=0,
                      help="base seed (default: %(default)s)")
    init.add_argument("--smoke", action="store_true",
                      help="mark every job as a smoke run")
    init.add_argument("--max-attempts", type=int, default=3,
                      help="retry budget per job (default: %(default)s)")
    init.add_argument("--backoff-ms", type=int, default=100,
                      help="base retry backoff (default: %(default)s)")
    init.add_argument("--timeout-ms", type=int, default=0,
                      help="per-attempt timeout, 0 = none "
                           "(default: %(default)s)")
    init.add_argument("--output", default=None,
                      help="write the manifest here (default: stdout)")
    init.add_argument("jobs", nargs="+",
                      help="job specs: experiment[:key=value...]")
    init.set_defaults(func=cmd_init)

    status = sub.add_parser("status", help="summarize a campaign directory")
    status.add_argument("dir", help="campaign directory")
    status.set_defaults(func=cmd_status)

    resume = sub.add_parser("resume",
                            help="continue a campaign from its journal")
    resume.add_argument("dir", help="campaign directory")
    resume.add_argument("--pw-run", type=pathlib.Path,
                        default=DEFAULT_PW_RUN,
                        help="pw_run binary (default: %(default)s)")
    resume.add_argument("--processes", type=int, default=4,
                        help="worker pool width (default: %(default)s)")
    resume.add_argument("--json", default=None,
                        help="write the final campaign document here")
    resume.add_argument("--metrics", default=None,
                        help="children collect metrics; merged block "
                             "written here")
    resume.set_defaults(func=cmd_resume)

    repair = sub.add_parser("repair",
                            help="truncate a torn results.jsonl tail")
    repair.add_argument("dir", help="campaign directory")
    repair.set_defaults(func=cmd_repair)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
