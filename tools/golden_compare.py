#!/usr/bin/env python3
"""Compare freshly produced experiment JSON against checked-in goldens.

Usage:
    tools/golden_compare.py <golden_dir> <candidate_dir> [--rtol=R] [--atol=A]

Both directories must contain the same set of *.json files (a missing or
extra candidate file is an error — silent coverage loss is the failure
mode this gate exists for). Files are deep-compared value by value:

  - objects/arrays: same keys / same length, recurse
  - strings, bools, null: exact
  - integers: exact
  - floats: |a - b| <= atol + rtol * |b|  (default: exact, because the
    simulator guarantees byte-identical canonical JSON for the same spec
    and seed; pass --rtol/--atol only for knowingly noisy fields)

Exit code 0 when everything matches, 1 with a per-path report otherwise.
"""

import argparse
import json
import pathlib
import sys


def compare(golden, candidate, path, rtol, atol, errors):
    if type(golden) is not type(candidate) and not (
        isinstance(golden, (int, float))
        and isinstance(candidate, (int, float))
        and not isinstance(golden, bool)
        and not isinstance(candidate, bool)
    ):
        errors.append(f"{path}: type {type(golden).__name__} != "
                      f"{type(candidate).__name__}")
        return
    if isinstance(golden, dict):
        missing = sorted(golden.keys() - candidate.keys())
        extra = sorted(candidate.keys() - golden.keys())
        if missing:
            errors.append(f"{path}: missing keys {missing}")
        if extra:
            errors.append(f"{path}: extra keys {extra}")
        for key in sorted(golden.keys() & candidate.keys()):
            compare(golden[key], candidate[key], f"{path}.{key}", rtol, atol,
                    errors)
    elif isinstance(golden, list):
        if len(golden) != len(candidate):
            errors.append(f"{path}: length {len(golden)} != {len(candidate)}")
            return
        for i, (g, c) in enumerate(zip(golden, candidate)):
            compare(g, c, f"{path}[{i}]", rtol, atol, errors)
    elif isinstance(golden, bool) or golden is None or isinstance(golden, str):
        if golden != candidate:
            errors.append(f"{path}: {golden!r} != {candidate!r}")
    elif isinstance(golden, int) and isinstance(candidate, int):
        if golden != candidate:
            errors.append(f"{path}: {golden} != {candidate}")
    else:  # at least one float
        if abs(golden - candidate) > atol + rtol * abs(golden):
            errors.append(f"{path}: {golden} != {candidate} "
                          f"(rtol={rtol}, atol={atol})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("golden_dir", type=pathlib.Path)
    parser.add_argument("candidate_dir", type=pathlib.Path)
    parser.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance for floats (default exact)")
    parser.add_argument("--atol", type=float, default=0.0,
                        help="absolute tolerance for floats (default exact)")
    args = parser.parse_args()

    golden_files = sorted(p.name for p in args.golden_dir.glob("*.json"))
    candidate_files = sorted(p.name for p in args.candidate_dir.glob("*.json"))
    if not golden_files:
        print(f"golden_compare: no *.json files in {args.golden_dir}",
              file=sys.stderr)
        return 1

    failed = False
    for name in sorted(set(golden_files) - set(candidate_files)):
        print(f"MISSING  {name}: golden exists but candidate was not produced")
        failed = True
    for name in sorted(set(candidate_files) - set(golden_files)):
        print(f"EXTRA    {name}: candidate has no checked-in golden "
              f"(add one under the golden dir)")
        failed = True

    for name in sorted(set(golden_files) & set(candidate_files)):
        with open(args.golden_dir / name) as f:
            golden = json.load(f)
        with open(args.candidate_dir / name) as f:
            candidate = json.load(f)
        errors = []
        compare(golden, candidate, name.removesuffix(".json"), args.rtol,
                args.atol, errors)
        if errors:
            failed = True
            print(f"DIFF     {name}:")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            print(f"OK       {name}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
