#!/usr/bin/env python3
"""Multi-process city survey driver (the Python face of `pw_run --city`).

Spawns one `pw_run city --district=K` child per district through a
bounded process pool, then delegates the reduction to
`pw_run --city-reduce` so there is exactly one reducer implementation
(runtime/city_reduce.cpp). The reduced document is byte-identical to a
single-process `pw_run city` run — CI enforces it.

    tools/pw_city.py --smoke --processes 4 --json city.json
    tools/pw_city.py --districts 8 --scale 0.2 --shards 4 --json city.json

Anything this script does not recognize is forwarded to the children
verbatim (e.g. --seed=123).
"""

import argparse
import concurrent.futures
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PW_RUN = REPO / "build" / "src" / "runtime" / "pw_run"

# Mirrors the `city` ExperimentSpec (pw_run --list): 8 districts,
# 4 under --smoke. Passing --districts always wins.
DEFAULT_DISTRICTS = 8
SMOKE_DISTRICTS = 4


def run_district(pw_run, district, out_dir, flags, metrics):
    doc = out_dir / f"district{district}.json"
    cmd = [str(pw_run), "city", f"--district={district}", f"--json={doc}"]
    if metrics:
        cmd += [f"--metrics={doc}.child.metrics.json",
                f"--timeline={doc}.child.trace.json"]
    cmd += flags
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # Exit 1 still writes a document (failed: true, reduced by OR);
    # anything else means the child never produced its document.
    if proc.returncode not in (0, 1) or not doc.exists():
        sys.stderr.write(f"district {district} failed "
                         f"(exit {proc.returncode}):\n{proc.stdout}"
                         f"{proc.stderr}")
        return False
    return True


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--pw-run", type=pathlib.Path, default=DEFAULT_PW_RUN,
                        help="pw_run binary (default: %(default)s)")
    parser.add_argument("--processes", type=int, default=4,
                        help="process-pool bound (default: %(default)s)")
    parser.add_argument("--districts", type=int, default=None,
                        help="district count (default: the spec's 8, "
                             "or 4 under --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="forwarded to the children")
    parser.add_argument("--json", default=None,
                        help="write the reduced document here")
    parser.add_argument("--metrics", default=None,
                        help="collect per-child metrics and write the "
                             "merged block here")
    parser.add_argument("--keep-dir", type=pathlib.Path, default=None,
                        help="write district documents here (kept) "
                             "instead of a scratch directory")
    args, forwarded = parser.parse_known_args()

    districts = args.districts
    if districts is None:
        districts = SMOKE_DISTRICTS if args.smoke else DEFAULT_DISTRICTS
    if districts < 1:
        parser.error("--districts must be >= 1")
    if not args.pw_run.exists():
        parser.error(f"pw_run not found at {args.pw_run} (build it first)")

    flags = list(forwarded) + [f"--districts={districts}"]
    if args.smoke:
        flags.append("--smoke")
    if "--district" in " ".join(forwarded):
        parser.error("--district is per-child; use --districts")

    print(f"pw_city: {districts} districts across "
          f"{min(args.processes, districts)} processes")

    with tempfile.TemporaryDirectory(prefix="pw_city.") as scratch:
        out_dir = args.keep_dir if args.keep_dir else pathlib.Path(scratch)
        out_dir.mkdir(parents=True, exist_ok=True)
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, args.processes))
        jobs = [pool.submit(run_district, args.pw_run, k, out_dir, flags,
                            args.metrics is not None)
                for k in range(districts)]
        ok = all(job.result() for job in jobs)
        pool.shutdown()
        if not ok:
            return 1

        reduce_cmd = [str(args.pw_run), f"--city-reduce={out_dir}"]
        if args.json is not None:
            reduce_cmd.append(f"--json={args.json}")
        if args.metrics is not None:
            reduce_cmd.append(f"--metrics={args.metrics}")
        return subprocess.run(reduce_cmd).returncode


if __name__ == "__main__":
    sys.exit(main())
