#!/usr/bin/env python3
"""CLI <-> documentation drift check (lint CI; no build needed).

The pw_run CLI surface is defined in exactly one place —
`kReservedFlags` plus the experiment ParamSpecs — and is documented in
prose across README.md, EXPERIMENTS.md, OBSERVABILITY.md and
CAMPAIGNS.md. Those drift apart silently: a flag lands in the driver
but never in the docs, or a doc keeps advertising a flag that was
renamed away. This check extracts both sides *statically* (the lint CI
job runs without a build) and fails on:

  undocumented-flag   a driver flag absent from pw_run's own usage text
                      or from every documentation file
  undocumented-param  an experiment parameter EXPERIMENTS.md never names
  unknown-doc-flag    a documented `--flag` that neither the driver, nor
                      any experiment spec, nor the tool allowlist defines
  unknown-usage-flag  a usage-text `--flag` the driver does not accept

Tool scripts (tools/pw_*.py) own flags of their own; those are listed
in TOOL_FLAGS below rather than discovered, so a typo in a doc cannot
hide behind the allowlist by accident.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
RUNNER = REPO / "src" / "runtime" / "runner.cpp"
EXPERIMENTS_DIR = REPO / "src" / "runtime" / "experiments"
DOCS = ["README.md", "EXPERIMENTS.md", "OBSERVABILITY.md", "CAMPAIGNS.md"]

# Flags owned by the Python tools (tools/pw_city.py, tools/pw_campaign.py,
# tools/bench_compare.py ...) or by external tools the docs quote (ctest,
# git). Keep sorted; additions need a matching owner in tools/.
TOOL_FLAGS = {
    "backoff-ms",         # pw_campaign.py init
    "baseline",           # bench_compare.py
    "build",              # cmake, quoted in build instructions
    "campaign",           # shared: pw_run --campaign / pw_campaign.py init
    "candidate",          # bench_compare.py
    "floor",              # bench_compare.py
    "keep-dir",           # pw_city.py
    "max-attempts",       # pw_campaign.py init
    "metrics",            # shared name: pw_run / tool scripts
    "output",             # pw_campaign.py init
    "output-on-failure",  # ctest, quoted in build instructions
    "preset",             # cmake, quoted in build instructions
    "processes",          # pw_city.py / pw_campaign.py resume
    "pw-run",             # pw_city.py / pw_campaign.py resume
    "seed",               # reserved per-experiment flag
    "suite-version",      # pw_campaign.py init
    "test-dir",           # ctest, quoted in build instructions
    "timeout-ms",         # pw_campaign.py init
}

# Usage-text placeholders like `--<param>=<value>`.
PLACEHOLDER_RE = re.compile(r"^<.*>$")
FLAG_RE = re.compile(r"--([a-z][a-z0-9_-]*|<[a-z>=<-]+>)")


def driver_flags(text):
    m = re.search(r"kReservedFlags\[\]\s*=\s*\{(.*?)\}", text, re.S)
    if not m:
        sys.exit("pw_checkflags: cannot find kReservedFlags in runner.cpp")
    return set(re.findall(r'"([a-z0-9_-]+)"', m.group(1)))


def usage_flags(text):
    start = text.index("void print_pw_run_usage")
    end = text.index("\n}", start)
    return {f for f in FLAG_RE.findall(text[start:end])
            if not PLACEHOLDER_RE.match(f)}


def experiment_params(text):
    # `{.name = "x", ...}` starts a ParamSpec; scenario device entries
    # use `.kind` on the same line and are skipped.
    params = set()
    for line in text.splitlines():
        m = re.search(r'\{\.name = "([a-z0-9_]+)"', line)
        if m and ".kind" not in line:
            params.add(m.group(1))
    return params


def main():
    runner_text = RUNNER.read_text()
    driver = driver_flags(runner_text)
    usage = usage_flags(runner_text)
    params = set()
    for path in sorted(EXPERIMENTS_DIR.glob("*.cpp")):
        params |= experiment_params(path.read_text())

    known = driver | params | TOOL_FLAGS
    failures = []

    for flag in sorted(usage - known):
        failures.append(f"unknown-usage-flag: pw_run usage text names "
                        f"--{flag}, which the driver does not accept")
    for flag in sorted(driver - usage):
        failures.append(f"undocumented-flag: driver flag --{flag} missing "
                        f"from pw_run's usage text (print_pw_run_usage)")

    doc_mentions = {}
    for doc in DOCS:
        path = REPO / doc
        if not path.exists():
            failures.append(f"missing-doc: {doc} does not exist")
            continue
        for flag in FLAG_RE.findall(path.read_text()):
            if not PLACEHOLDER_RE.match(flag):
                doc_mentions.setdefault(flag, set()).add(doc)

    for flag in sorted(doc_mentions.keys() - known):
        where = ", ".join(sorted(doc_mentions[flag]))
        failures.append(f"unknown-doc-flag: --{flag} ({where}) matches no "
                        f"driver flag, experiment parameter or tool flag")
    for flag in sorted(driver - doc_mentions.keys()):
        failures.append(f"undocumented-flag: driver flag --{flag} appears "
                        f"in none of {', '.join(DOCS)}")

    experiments_text = (REPO / "EXPERIMENTS.md").read_text() \
        if (REPO / "EXPERIMENTS.md").exists() else ""
    documented_params = set(FLAG_RE.findall(experiments_text))
    for param in sorted(params - documented_params):
        failures.append(f"undocumented-param: experiment parameter "
                        f"--{param} never appears in EXPERIMENTS.md")

    if failures:
        print(f"pw_checkflags: {len(failures)} drift failure(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"pw_checkflags: OK ({len(driver)} driver flags, "
          f"{len(params)} experiment parameters, {len(DOCS)} docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
